// Package tablefree implements the paper's first delay-generation
// architecture (§IV): no delay tables at all — every two-way delay is
// computed on the fly by a small per-element unit built around the
// piecewise-linear square-root approximation of Fig. 2.
//
// Geometry decomposition (§IV-B): for focal point S and element D = (xD,
// yD, 0), the receive argument |S−D|² = (Sx−xD)² + (Sy−yD)² + Sz² splits
// into a z term that depends only on S, an x term computable once per
// transducer column and a y term once per row — so each element-specific
// unit performs just two additions and one approximated square root. The
// transmit leg |S−O| is computed once per point and shared by all units.
//
// The package provides a float "ideal PWL" provider and a fixed-point
// datapath provider (the synthesized hardware), a sweep simulator that
// counts segment-tracker stalls, and the throughput/frame-rate law the
// paper quotes ("about 1 fps per 20 MHz of operating frequency").
package tablefree

import (
	"fmt"
	"math"

	"ultrabeam/internal/delay"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/sqrtapprox"
	"ultrabeam/internal/xdcr"
)

// Config assembles a TABLEFREE delay generator.
type Config struct {
	Vol    scan.Volume
	Arr    xdcr.Array
	Origin geom.Vec3       // emission reference O (array center by default)
	Conv   delay.Converter // physical constants c, fs
	Delta  float64         // PWL error bound per √ term, in samples (paper: 0.25)
	Fixed  sqrtapprox.FixedConfig
}

// DefaultDelta is the paper's per-term approximation bound (±0.25 samples).
const DefaultDelta = 0.25

// Provider generates delays through the TABLEFREE architecture. It
// implements delay.Provider. UseFixed selects between the ideal float PWL
// (algorithmic error only) and the quantized hardware datapath.
type Provider struct {
	Cfg      Config
	Approx   *sqrtapprox.Approx
	FixedDP  *sqrtapprox.FixedApprox
	UseFixed bool

	// Precomputed geometry in sample units.
	elemX, elemY []float64 // element coordinates, samples
	originS      geom.Vec3 // origin, samples
}

// New builds the provider, sizing the PWL domain from the configuration's
// worst-case one-way distance.
func New(cfg Config) *Provider {
	if cfg.Delta <= 0 {
		cfg.Delta = DefaultDelta
	}
	if (cfg.Fixed == sqrtapprox.FixedConfig{}) {
		cfg.Fixed = sqrtapprox.DefaultFixedConfig()
	}
	maxDist := maxOneWaySamples(cfg)
	ap := sqrtapprox.New(maxDist*maxDist, cfg.Delta)
	p := &Provider{
		Cfg:     cfg,
		Approx:  ap,
		FixedDP: sqrtapprox.NewFixed(ap, cfg.Fixed),
		elemX:   make([]float64, cfg.Arr.NX),
		elemY:   make([]float64, cfg.Arr.NY),
		originS: cfg.Origin.Scale(cfg.Conv.Fs / cfg.Conv.C),
	}
	for i := range p.elemX {
		p.elemX[i] = cfg.Conv.MetersToSamples(cfg.Arr.ElementX(i))
	}
	for j := range p.elemY {
		p.elemY[j] = cfg.Conv.MetersToSamples(cfg.Arr.ElementY(j))
	}
	return p
}

// maxOneWaySamples bounds the largest one-way path (transmit or receive) in
// sample units: deepest point at extreme steering to the farthest aperture
// corner, plus the origin offset.
func maxOneWaySamples(cfg Config) float64 {
	r := cfg.Conv.MetersToSamples(cfg.Vol.Depth.Max)
	halfDiag := cfg.Conv.MetersToSamples(math.Hypot(cfg.Arr.Width(), cfg.Arr.Height()) / 2)
	o := cfg.Conv.MetersToSamples(cfg.Origin.Norm())
	return r + halfDiag + o + 1
}

// Name implements delay.Provider.
func (p *Provider) Name() string {
	if p.UseFixed {
		return "tablefree-fixed"
	}
	return "tablefree"
}

// focalSamples returns S for grid node (it, ip, id) in sample units.
func (p *Provider) focalSamples(it, ip, id int) geom.Vec3 {
	r := p.Cfg.Conv.MetersToSamples(p.Cfg.Vol.Depth.At(id))
	return geom.SphericalToCartesian(r, p.Cfg.Vol.Theta.At(it), p.Cfg.Vol.Phi.At(ip))
}

// args returns the transmit and receive square-root arguments (sample²).
func (p *Provider) args(it, ip, id, ei, ej int) (argTx, argRx float64) {
	s := p.focalSamples(it, ip, id)
	dx := s.X - p.originS.X
	dy := s.Y - p.originS.Y
	dz := s.Z - p.originS.Z
	argTx = dx*dx + dy*dy + dz*dz
	// Receive decomposition: x term per column, y term per row, z per point.
	xt := s.X - p.elemX[ei]
	yt := s.Y - p.elemY[ej]
	argRx = xt*xt + yt*yt + s.Z*s.Z
	return argTx, argRx
}

// DelaySamples implements delay.Provider: the sum of two approximated
// square roots (Eq. 3), already in sample units.
func (p *Provider) DelaySamples(it, ip, id, ei, ej int) float64 {
	argTx, argRx := p.args(it, ip, id, ei, ej)
	if p.UseFixed {
		return p.FixedDP.Eval(argTx) + p.FixedDP.Eval(argRx)
	}
	return p.Approx.Eval(argTx) + p.Approx.Eval(argRx)
}

// NumSegments reports the PWL piece count of the underlying approximation.
func (p *Provider) NumSegments() int { return p.Approx.NumSegments() }

// WithTransmit implements delay.TransmitProvider: TABLEFREE computes the
// transmit leg on the fly (one shared √ per focal point, §IV-B), so any
// emission origin is representable — the derived unit is rebuilt with the
// PWL domain re-sized for the new worst-case path, exactly as New would
// size it, and keeps the receiver's fixed/float datapath selection.
func (p *Provider) WithTransmit(tx delay.Transmit) (delay.Provider, error) {
	cfg := p.Cfg
	cfg.Origin = tx.Origin
	np := New(cfg)
	np.UseFixed = p.UseFixed
	return np, nil
}

// SweepResult aggregates the cost of one per-element unit following a full
// volume sweep with the incremental segment tracker.
type SweepResult struct {
	Points       int // focal points evaluated
	TrackerSteps int // total segment-boundary crossings
	StallCycles  int // crossings beyond one per evaluation (pipeline stalls)
	MaxJump      int // worst single-evaluation segment jump
}

// SimulateSweep runs the receive-path segment tracker of the unit serving
// element (ei, ej) through the whole volume in the given order and returns
// the tracking cost. The paper's key claim (§IV-B) is that sweeps make
// segment transitions gradual, so StallCycles stays negligible.
func (p *Provider) SimulateSweep(order scan.Order, ei, ej int) SweepResult {
	tr := sqrtapprox.NewTracker(p.Approx)
	var res SweepResult
	prevSteps := 0
	p.Cfg.Vol.Walk(order, func(ix scan.Index) {
		_, argRx := p.args(ix.Theta, ix.Phi, ix.Depth, ei, ej)
		tr.Seek(argRx)
		res.Points++
		jump := tr.Steps - prevSteps
		prevSteps = tr.Steps
		if jump > 1 {
			res.StallCycles += jump - 1
		}
	})
	res.TrackerSteps = tr.Steps
	res.MaxJump = tr.MaxJump
	return res
}

// StallFraction is StallCycles per point — the sweep-order-dependent
// overhead the co-design discussion in §II-A alludes to.
func (r SweepResult) StallFraction() float64 {
	if r.Points == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(r.Points)
}

// UnitCost describes the arithmetic resources of one per-element delay unit
// (Fig. 2a): it feeds the FPGA model and the paper's replication argument
// ("this unit must be instantiated once per transducer element").
type UnitCost struct {
	Adders      int // element-specific additions per point (2, §IV-B)
	Multipliers int // PWL slope multiplier (1)
	Comparators int // segment-boundary comparators (2: ≥ upper, < lower)
	SegLUTBits  int // coefficient storage (C1 + V0 + bounds per segment)
}

// Cost returns the per-unit resource census for this provider's PWL size.
func (p *Provider) Cost() UnitCost {
	// Per segment: slope (SlopeFrac bits, no integer part), value-at-start
	// (13 integer + OffsetFrac bits) and the upper bound (25-bit argument).
	slopeBits := p.Cfg.Fixed.SlopeFrac
	offsetBits := 13 + p.Cfg.Fixed.OffsetFrac
	boundBits := 25
	return UnitCost{
		Adders:      2,
		Multipliers: 1,
		Comparators: 2,
		SegLUTBits:  p.NumSegments() * (slopeBits + offsetBits + boundBits),
	}
}

// Throughput is the paper's §IV-B/§VI-B performance law for TABLEFREE.
type Throughput struct {
	ClockHz float64 // achieved operating frequency (167 MHz on Virtex-7 -2)
	Units   int     // instantiated per-element units
	// CyclesPerPointOverhead models pipeline refill, nappe hand-over and
	// summation handshake cycles per focal point beyond the single evaluate
	// cycle. 0.22 calibrates the model to the paper's "1 fps per 20 MHz"
	// rule for the 128×128×1000 volume (20e6 cycles / 16.384e6 points).
	CyclesPerPointOverhead float64
}

// PaperOverhead is the calibrated per-point cycle overhead (see Throughput).
const PaperOverhead = 20e6/16.384e6 - 1

// PeakDelaysPerSecond is Units × Clock: each unit emits one delay per cycle.
func (t Throughput) PeakDelaysPerSecond() float64 {
	return float64(t.Units) * t.ClockHz
}

// FrameRate returns volumes per second for a volume with the given focal-
// point count: each unit walks all points once per frame.
func (t Throughput) FrameRate(points int) float64 {
	cyclesPerFrame := float64(points) * (1 + t.CyclesPerPointOverhead)
	return t.ClockHz / cyclesPerFrame
}

// ClockForFrameRate inverts FrameRate: the clock needed for target fps.
func (t Throughput) ClockForFrameRate(points int, fps float64) float64 {
	return fps * float64(points) * (1 + t.CyclesPerPointOverhead)
}

// String summarizes the law.
func (t Throughput) String() string {
	return fmt.Sprintf("%d units @ %.0f MHz: %.2f Tdelays/s peak",
		t.Units, t.ClockHz/1e6, t.PeakDelaysPerSecond()/1e12)
}
