package tablefree

import "ultrabeam/internal/delay"

// Layout implements delay.BlockProvider.
func (p *Provider) Layout() delay.Layout {
	return delay.Layout{
		NTheta: p.Cfg.Vol.Theta.N, NPhi: p.Cfg.Vol.Phi.N,
		NX: p.Cfg.Arr.NX, NY: p.Cfg.Arr.NY,
	}
}

// FillNappe implements delay.BlockProvider with the §IV-B geometry
// decomposition applied at block granularity: per voxel, the transmit leg
// √|S−O|² is approximated once and shared by the whole element plane (in
// hardware it is "computed only once and then distributed to all the
// element-specific units"), the squared x terms are computed once per
// transducer column and the squared y/z terms once per row, and the receive
// square roots are evaluated as one batch through the incremental segment
// cursor instead of a binary search per element. Results are bit-identical
// to DelaySamples: the argument association order and the PWL evaluation are
// unchanged, only their schedule is.
func (p *Provider) FillNappe(id int, dst []float64) {
	p.fillNappe(id, dst, nil)
}

// FillNappe16 implements delay.BlockProvider16: the identical §IV-B
// decomposition and batched PWL evaluation, quantizing each voxel's element
// plane as soon as it is produced so only one voxel of float64 values is
// live at a time (the working set drops from a block to an element plane).
func (p *Provider) FillNappe16(id int, dst delay.Block16) {
	p.fillNappe(id, nil, dst)
}

// fillNappe is the shared nappe sweep: exactly one of dst (float64 block)
// and dst16 (quantized block) is non-nil. The float64 arithmetic and its
// association order are identical on both paths — dst16 merely fuses
// delay.Index16 into the per-voxel emit loop — which keeps the quantized
// fill exact with respect to the float fill.
func (p *Provider) fillNappe(id int, dst []float64, dst16 delay.Block16) {
	l := p.Layout()
	nE := l.VoxelStride()
	xt2 := make([]float64, l.NX) // per-column (Sx−xD)², refreshed per voxel
	args := make([]float64, nE)  // batched receive √ arguments of one voxel
	var voxel []float64          // per-voxel output plane on the quantized path
	if dst16 != nil {
		voxel = make([]float64, nE)
	}
	k := 0
	for it := 0; it < l.NTheta; it++ {
		for ip := 0; ip < l.NPhi; ip++ {
			s := p.focalSamples(it, ip, id)
			dx := s.X - p.originS.X
			dy := s.Y - p.originS.Y
			dz := s.Z - p.originS.Z
			argTx := dx*dx + dy*dy + dz*dz
			var tx float64
			if p.UseFixed {
				tx = p.FixedDP.Eval(argTx)
			} else {
				tx = p.Approx.Eval(argTx)
			}
			zz := s.Z * s.Z
			for ei := 0; ei < l.NX; ei++ {
				xt := s.X - p.elemX[ei]
				xt2[ei] = xt * xt
			}
			j := 0
			for ej := 0; ej < l.NY; ej++ {
				yt := s.Y - p.elemY[ej]
				yt2 := yt * yt
				for ei := 0; ei < l.NX; ei++ {
					args[j] = xt2[ei] + yt2 + zz
					j++
				}
			}
			out := voxel
			if dst16 == nil {
				out = dst[k : k+nE]
			}
			if p.UseFixed {
				p.FixedDP.EvalSlice(out, args)
			} else {
				p.Approx.EvalSlice(out, args)
			}
			if dst16 != nil {
				for i, rx := range out {
					dst16[k+i] = delay.Index16(tx + rx)
				}
			} else {
				for i := range out {
					out[i] = tx + out[i]
				}
			}
			k += nE
		}
	}
}
