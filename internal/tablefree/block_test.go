package tablefree

import (
	"testing"

	"ultrabeam/internal/delay"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

func blockSetup() *Provider {
	return New(Config{
		Vol:  scan.NewVolume(geom.Radians(60), geom.Radians(60), 0.06, 7, 6, 12),
		Arr:  xdcr.NewArray(8, 5, 0.385e-3/2),
		Conv: delay.Converter{C: 1540, Fs: 32e6},
	})
}

// TestFillNappeBitIdentical holds the block fill to the scalar reference for
// both the ideal-PWL and the fixed-point datapaths, at every depth.
func TestFillNappeBitIdentical(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		p := blockSetup()
		p.UseFixed = fixed
		l := p.Layout()
		dst := make([]float64, l.BlockLen())
		for id := 0; id < p.Cfg.Vol.Depth.N; id++ {
			p.FillNappe(id, dst)
			for it := 0; it < l.NTheta; it++ {
				for ip := 0; ip < l.NPhi; ip++ {
					for ej := 0; ej < l.NY; ej++ {
						for ei := 0; ei < l.NX; ei++ {
							want := p.DelaySamples(it, ip, id, ei, ej)
							got := dst[l.Index(it, ip, ei, ej)]
							if got != want {
								t.Fatalf("%s id=%d (%d,%d,%d,%d): block %v != scalar %v",
									p.Name(), id, it, ip, ei, ej, got, want)
							}
						}
					}
				}
			}
		}
	}
}

func TestLayoutMatchesConfig(t *testing.T) {
	p := blockSetup()
	want := delay.Layout{NTheta: 7, NPhi: 6, NX: 8, NY: 5}
	if p.Layout() != want {
		t.Errorf("layout = %+v, want %+v", p.Layout(), want)
	}
	var _ delay.BlockProvider = p
}

// TestFillNappe16BitIdentical holds the native quantized fill to
// delay.QuantizeNappe over the float fill, slot for slot, on both datapaths.
func TestFillNappe16BitIdentical(t *testing.T) {
	for _, fixed := range []bool{false, true} {
		p := blockSetup()
		p.UseFixed = fixed
		l := p.Layout()
		wide := make([]float64, l.BlockLen())
		want := make(delay.Block16, l.BlockLen())
		got := make(delay.Block16, l.BlockLen())
		for id := 0; id < p.Cfg.Vol.Depth.N; id++ {
			p.FillNappe(id, wide)
			delay.QuantizeNappe(want, wide)
			p.FillNappe16(id, got)
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s fixed=%v id=%d slot %d: native %d != quantized %d",
						p.Name(), fixed, id, k, got[k], want[k])
				}
			}
		}
	}
	var _ delay.BlockProvider16 = (*Provider)(nil)
}
