package tablefree

import (
	"testing"

	"ultrabeam/internal/delay"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

// TestWithTransmitMatchesRebuiltProvider: the derived unit must equal a
// provider constructed directly for the transmit's origin — same PWL
// sizing, same fixed/float selection — and keep the block/scalar contract.
func TestWithTransmitMatchesRebuiltProvider(t *testing.T) {
	cfg := Config{
		Vol:  scan.NewVolume(geom.Radians(40), geom.Radians(20), 0.05, 5, 3, 8),
		Arr:  xdcr.NewArray(4, 4, 0.2e-3),
		Conv: delay.Converter{C: 1540, Fs: 32e6},
	}
	for _, fixed := range []bool{false, true} {
		p := New(cfg)
		p.UseFixed = fixed
		tx := delay.Transmit{Origin: geom.Vec3{X: 1e-3, Z: -4e-3}}
		q, err := p.WithTransmit(tx)
		if err != nil {
			t.Fatal(err)
		}
		dcfg := cfg
		dcfg.Origin = tx.Origin
		want := New(dcfg)
		want.UseFixed = fixed
		qp, ok := q.(*Provider)
		if !ok || qp.UseFixed != fixed {
			t.Fatalf("derived provider lost the datapath selection (fixed=%v)", fixed)
		}
		blk := make([]float64, qp.Layout().BlockLen())
		for id := 0; id < cfg.Vol.Depth.N; id += 3 {
			qp.FillNappe(id, blk)
			k := 0
			for it := 0; it < cfg.Vol.Theta.N; it++ {
				for ip := 0; ip < cfg.Vol.Phi.N; ip++ {
					for ej := 0; ej < cfg.Arr.NY; ej++ {
						for ei := 0; ei < cfg.Arr.NX; ei++ {
							w := want.DelaySamples(it, ip, id, ei, ej)
							if got := qp.DelaySamples(it, ip, id, ei, ej); got != w {
								t.Fatalf("fixed=%v scalar differs at (%d,%d,%d,%d,%d)", fixed, it, ip, id, ei, ej)
							}
							if blk[k] != w {
								t.Fatalf("fixed=%v block fill differs at %d", fixed, k)
							}
							k++
						}
					}
				}
			}
		}
	}
}
