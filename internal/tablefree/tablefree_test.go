package tablefree

import (
	"math"
	"testing"

	"ultrabeam/internal/delay"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

var conv = delay.Converter{C: 1540, Fs: 32e6}

// smallConfig keeps sweeps fast while preserving the paper's angular span
// and depth range.
func smallConfig() Config {
	return Config{
		Vol:  scan.NewVolume(geom.Radians(73), geom.Radians(73), 0.1925, 17, 17, 50),
		Arr:  xdcr.NewArray(16, 16, 0.385e-3/2),
		Conv: conv,
	}
}

func exactFor(cfg Config) *delay.Exact {
	return delay.NewExact(cfg.Vol, cfg.Arr, cfg.Origin, cfg.Conv)
}

func TestDefaultsApplied(t *testing.T) {
	p := New(smallConfig())
	if p.Cfg.Delta != DefaultDelta {
		t.Errorf("delta default = %v", p.Cfg.Delta)
	}
	if p.Cfg.Fixed.SlopeFrac == 0 {
		t.Error("fixed config default not applied")
	}
	if p.Name() != "tablefree" {
		t.Errorf("Name = %q", p.Name())
	}
	p.UseFixed = true
	if p.Name() != "tablefree-fixed" {
		t.Errorf("fixed Name = %q", p.Name())
	}
}

func TestSegmentCountAtPaperGeometry(t *testing.T) {
	// Full Table I geometry must need ~70 segments (§IV-B).
	cfg := Config{
		Vol:  scan.NewVolume(geom.Radians(73), geom.Radians(73), 500*0.385e-3, 128, 128, 1000),
		Arr:  xdcr.NewArray(100, 100, 0.385e-3/2),
		Conv: conv,
	}
	p := New(cfg)
	if n := p.NumSegments(); n < 60 || n > 80 {
		t.Errorf("segments = %d, paper reports ~70", n)
	} else {
		t.Logf("segments = %d (paper: ~70)", n)
	}
}

// paperApertureConfig keeps the full 19.25 mm aperture and angular span of
// Table I (so transmit- and receive-leg approximation errors decorrelate as
// they do at paper scale) with a subsampled focal grid; accuracy tests
// stride the elements.
func paperApertureConfig() Config {
	return Config{
		Vol:  scan.NewVolume(geom.Radians(73), geom.Radians(73), 500*0.385e-3, 17, 17, 50),
		Arr:  xdcr.NewArray(100, 100, 0.385e-3/2),
		Conv: conv,
	}
}

func TestIdealAccuracyWithinTwoDelta(t *testing.T) {
	// Sum of two ±δ approximations: |error| ≤ 0.5 samples, mean ≈ 0.204
	// (§VI-A). Sampled sweep at paper aperture.
	cfg := paperApertureConfig()
	p := New(cfg)
	st := delay.Compare(p, exactFor(cfg), 9)
	if st.MaxAbs > 2*p.Cfg.Delta*(1+1e-9) {
		t.Errorf("max |err| = %v, theoretical cap %v", st.MaxAbs, 2*p.Cfg.Delta)
	}
	if st.MeanAbs < 0.12 || st.MeanAbs > 0.27 {
		t.Errorf("mean |err| = %v, expected in the ~0.2 band (paper 0.204)", st.MeanAbs)
	}
	t.Logf("ideal PWL: %v (paper: mean ≈0.204, max 0.5)", st.String())
}

func TestFixedAccuracyMatchesPaperBand(t *testing.T) {
	// §VI-A: fixed-point selection error mean ≈ 0.2489, max 2.
	cfg := paperApertureConfig()
	p := New(cfg)
	p.UseFixed = true
	st := delay.Compare(p, exactFor(cfg), 9)
	if st.MeanAbsIndex < 0.15 || st.MeanAbsIndex > 0.3 {
		t.Errorf("mean index error = %v, paper reports ≈0.2489", st.MeanAbsIndex)
	}
	if st.MaxAbsIndex > 2 {
		t.Errorf("max index error = %d, paper reports 2", st.MaxAbsIndex)
	}
	t.Logf("fixed datapath: %v (paper: mean ≈0.2489, max 2)", st.String())
}

func TestFixedCloseToIdeal(t *testing.T) {
	cfg := smallConfig()
	ideal := New(cfg)
	fx := New(cfg)
	fx.UseFixed = true
	worst := 0.0
	cfg.Vol.Walk(scan.NappeOrder, func(ix scan.Index) {
		if ix.Depth%10 != 0 {
			return
		}
		for ej := 0; ej < cfg.Arr.NY; ej += 5 {
			for ei := 0; ei < cfg.Arr.NX; ei += 5 {
				d := math.Abs(ideal.DelaySamples(ix.Theta, ix.Phi, ix.Depth, ei, ej) -
					fx.DelaySamples(ix.Theta, ix.Phi, ix.Depth, ei, ej))
				if d > worst {
					worst = d
				}
			}
		}
	})
	if worst > 0.1 {
		t.Errorf("fixed vs ideal diverge by %v samples", worst)
	}
}

func TestTransmitLegSharedAcrossElements(t *testing.T) {
	// The transmit argument must not depend on the element (O is fixed):
	// delay(S, D1) − delay(S, D2) must equal the receive-leg difference.
	cfg := smallConfig()
	p := New(cfg)
	tx1, _ := p.args(3, 4, 20, 0, 0)
	tx2, _ := p.args(3, 4, 20, 15, 15)
	if tx1 != tx2 {
		t.Errorf("transmit argument depends on element: %v vs %v", tx1, tx2)
	}
}

func TestArgsMatchGeometry(t *testing.T) {
	cfg := smallConfig()
	p := New(cfg)
	e := exactFor(cfg)
	for _, tc := range [][5]int{{0, 0, 0, 0, 0}, {8, 8, 25, 7, 7}, {16, 0, 49, 15, 3}} {
		argTx, argRx := p.args(tc[0], tc[1], tc[2], tc[3], tc[4])
		wantTx := e.TransmitSamples(tc[0], tc[1], tc[2])
		wantRx := e.ReceiveSamples(tc[0], tc[1], tc[2], tc[3], tc[4])
		if math.Abs(math.Sqrt(argTx)-wantTx) > 1e-6 {
			t.Errorf("tx arg mismatch at %v: %v vs %v", tc, math.Sqrt(argTx), wantTx)
		}
		if math.Abs(math.Sqrt(argRx)-wantRx) > 1e-6 {
			t.Errorf("rx arg mismatch at %v: %v vs %v", tc, math.Sqrt(argRx), wantRx)
		}
	}
}

func TestOffCenterOrigin(t *testing.T) {
	cfg := smallConfig()
	cfg.Origin = geom.Vec3{X: 0.002, Y: -0.001}
	p := New(cfg)
	st := delay.Compare(p, exactFor(cfg), 4)
	if st.MaxAbs > 2*p.Cfg.Delta*(1+1e-9) {
		t.Errorf("off-center origin: max |err| = %v", st.MaxAbs)
	}
}

func TestSweepStallsNegligibleNappeOrder(t *testing.T) {
	// §IV-B: sequential sweeps cross segment boundaries gradually, so the
	// tracker almost never needs more than one step per point.
	cfg := smallConfig()
	p := New(cfg)
	for _, el := range [][2]int{{0, 0}, {8, 8}, {15, 15}} {
		res := p.SimulateSweep(scan.NappeOrder, el[0], el[1])
		if res.Points != cfg.Vol.Points() {
			t.Fatalf("sweep visited %d points", res.Points)
		}
		if res.StallFraction() > 0.01 {
			t.Errorf("element %v: stall fraction %v too high for nappe order",
				el, res.StallFraction())
		}
	}
}

func TestSweepScanlineRestartCost(t *testing.T) {
	// Scanline order restarts the depth axis at every line: the argument
	// jumps from max depth back to min depth, forcing a multi-segment
	// re-seek. Stalls must exist yet remain a bounded fraction.
	cfg := smallConfig()
	p := New(cfg)
	res := p.SimulateSweep(scan.ScanlineOrder, 8, 8)
	if res.StallCycles == 0 {
		t.Error("scanline restarts should cost some stalls")
	}
	if res.MaxJump >= p.NumSegments() {
		t.Error("re-seek should never exceed total segment count")
	}
	nappe := p.SimulateSweep(scan.NappeOrder, 8, 8)
	if nappe.StallCycles >= res.StallCycles {
		t.Errorf("nappe order (%d stalls) should beat scanline order (%d)",
			nappe.StallCycles, res.StallCycles)
	}
}

func TestUnitCost(t *testing.T) {
	p := New(smallConfig())
	c := p.Cost()
	if c.Adders != 2 || c.Multipliers != 1 || c.Comparators != 2 {
		t.Errorf("unit arithmetic census = %+v, want 2/1/2 (§IV-B)", c)
	}
	if c.SegLUTBits <= 0 || c.SegLUTBits != p.NumSegments()*(24+13+6+25) {
		t.Errorf("segment LUT bits = %d", c.SegLUTBits)
	}
}

func TestThroughputPaperNumbers(t *testing.T) {
	// Table II: 10000 units at 167 MHz → 1.67 Tdelays/s; frame rate ≈ 8 fps
	// via the 1 fps / 20 MHz rule (paper reports 7.8 after placement).
	th := Throughput{ClockHz: 167e6, Units: 10000, CyclesPerPointOverhead: PaperOverhead}
	if got := th.PeakDelaysPerSecond(); math.Abs(got-1.67e12) > 1e9 {
		t.Errorf("peak = %v delays/s, want 1.67e12", got)
	}
	points := 128 * 128 * 1000
	fps := th.FrameRate(points)
	if fps < 7 || fps < 7.8*0.9 || fps > 9 {
		t.Errorf("frame rate = %v fps, paper band 7.8±1", fps)
	}
	// The rule itself: 20 MHz per fps.
	if clk := th.ClockForFrameRate(points, 1); math.Abs(clk-20e6) > 1e5 {
		t.Errorf("clock for 1 fps = %v, want 20 MHz", clk)
	}
	if th.String() == "" {
		t.Error("empty summary")
	}
}

func TestStallFractionEmpty(t *testing.T) {
	var r SweepResult
	if r.StallFraction() != 0 {
		t.Error("empty sweep should report 0 stalls")
	}
}

func BenchmarkDelaySamplesFloat(b *testing.B) {
	p := New(smallConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.DelaySamples(i%17, (i/17)%17, i%50, i%16, (i/16)%16)
	}
}

func BenchmarkDelaySamplesFixed(b *testing.B) {
	p := New(smallConfig())
	p.UseFixed = true
	for i := 0; i < b.N; i++ {
		p.DelaySamples(i%17, (i/17)%17, i%50, i%16, (i/16)%16)
	}
}

func BenchmarkSimulateSweepNappe(b *testing.B) {
	p := New(smallConfig())
	for i := 0; i < b.N; i++ {
		p.SimulateSweep(scan.NappeOrder, 8, 8)
	}
}
