// Package geom provides the 3-D geometry substrate of the beamformer: vector
// algebra, the spherical scan parametrization of Eq. (5) in the paper, and
// uniform angle/depth grids for the imaging volume.
//
// Coordinate convention (paper §V-A): the transducer lies in the z = 0
// plane, the sound origin O at the array center, the z axis points into the
// body. A focal point on the line of sight steered by azimuth θ (in the xz
// plane) and elevation φ is
//
//	S = (r·cosφ·sinθ, r·sinφ, r·cosφ·cosθ)
//
// where r is the distance |S−O|.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a point or displacement in meters.
type Vec3 struct{ X, Y, Z float64 }

// Add returns v+w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v−w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm2 returns |v|².
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Norm returns the Euclidean length |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Norm2()) }

// Dist returns |v−w|.
func (v Vec3) Dist(w Vec3) float64 { return v.Sub(w).Norm() }

// String formats the vector in millimeters for readable diagnostics.
func (v Vec3) String() string {
	return fmt.Sprintf("(%.3f, %.3f, %.3f) mm", v.X*1e3, v.Y*1e3, v.Z*1e3)
}

// Degrees converts radians to degrees.
func Degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Radians converts degrees to radians.
func Radians(deg float64) float64 { return deg * math.Pi / 180 }

// SphericalToCartesian implements Eq. (5): the focal point at range r along
// the (θ, φ) line of sight. Angles in radians.
func SphericalToCartesian(r, theta, phi float64) Vec3 {
	cphi, sphi := math.Cos(phi), math.Sin(phi)
	ctheta, stheta := math.Cos(theta), math.Sin(theta)
	return Vec3{
		X: r * cphi * stheta,
		Y: r * sphi,
		Z: r * cphi * ctheta,
	}
}

// CartesianToSpherical inverts Eq. (5), returning (r, θ, φ). For points with
// r = 0 the angles are reported as 0.
func CartesianToSpherical(p Vec3) (r, theta, phi float64) {
	r = p.Norm()
	if r == 0 {
		return 0, 0, 0
	}
	phi = math.Asin(clamp(p.Y/r, -1, 1))
	theta = math.Atan2(p.X, p.Z)
	return r, theta, phi
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Grid is a uniform 1-D sampling of an interval, used for the θ, φ and depth
// axes of the focal-point grid.
type Grid struct {
	Min, Max float64
	N        int
}

// NewSymmetricGrid returns a grid of n points spanning [−half, +half]
// inclusive of both endpoints (n ≥ 2), matching the paper's −θmax..θmax scan.
func NewSymmetricGrid(half float64, n int) Grid { return Grid{Min: -half, Max: half, N: n} }

// NewDepthGrid returns n focal depths covering (0, max]: the k-th point is
// (k+1)·max/n, so the first nappe is one depth step from the origin and the
// last is exactly at max. Avoiding r = 0 keeps the steering math defined.
func NewDepthGrid(max float64, n int) Grid { return Grid{Min: max / float64(n), Max: max, N: n} }

// At returns the i-th sample of the grid.
func (g Grid) At(i int) float64 {
	if g.N == 1 {
		return g.Min
	}
	return g.Min + (g.Max-g.Min)*float64(i)/float64(g.N-1)
}

// Step returns the spacing between adjacent samples.
func (g Grid) Step() float64 {
	if g.N <= 1 {
		return 0
	}
	return (g.Max - g.Min) / float64(g.N-1)
}

// Values materializes all samples.
func (g Grid) Values() []float64 {
	out := make([]float64, g.N)
	for i := range out {
		out[i] = g.At(i)
	}
	return out
}

// Contains reports whether x lies within the closed interval of the grid.
func (g Grid) Contains(x float64) bool { return x >= g.Min-1e-12 && x <= g.Max+1e-12 }
