package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecAlgebra(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{-4, 5, 0.5}
	if got := a.Add(b); got != (Vec3{-3, 7, 3.5}) {
		t.Errorf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Vec3{5, -3, 2.5}) {
		t.Errorf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Vec3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := a.Dot(b); got != -4+10+1.5 {
		t.Errorf("Dot = %v", got)
	}
	if got := (Vec3{3, 4, 0}).Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := (Vec3{1, 1, 1}).Dist(Vec3{1, 1, 2}); got != 1 {
		t.Errorf("Dist = %v", got)
	}
}

func TestDegreesRadians(t *testing.T) {
	if !almost(Degrees(math.Pi), 180, 1e-12) {
		t.Error("Degrees(pi) != 180")
	}
	if !almost(Radians(90), math.Pi/2, 1e-12) {
		t.Error("Radians(90) != pi/2")
	}
}

func TestSphericalOnAxis(t *testing.T) {
	// θ = φ = 0 must land on the z axis at distance r.
	p := SphericalToCartesian(0.1, 0, 0)
	if !almost(p.X, 0, 1e-15) || !almost(p.Y, 0, 1e-15) || !almost(p.Z, 0.1, 1e-15) {
		t.Errorf("on-axis point = %v", p)
	}
}

func TestSphericalPreservesRange(t *testing.T) {
	// |S| must equal r for any steering, the property the paper's reference-
	// point construction R relies on (r := |RO| = |SO|).
	for _, theta := range []float64{-0.6, -0.2, 0, 0.33, 0.637} {
		for _, phi := range []float64{-0.6, 0, 0.25, 0.637} {
			p := SphericalToCartesian(0.05, theta, phi)
			if !almost(p.Norm(), 0.05, 1e-15) {
				t.Errorf("|S(θ=%v, φ=%v)| = %v, want 0.05", theta, phi, p.Norm())
			}
		}
	}
}

func TestSphericalRoundTrip(t *testing.T) {
	f := func(rRaw, thRaw, phRaw uint16) bool {
		r := 0.001 + float64(rRaw)/65535*0.2
		theta := (float64(thRaw)/65535 - 0.5) * Radians(73)
		phi := (float64(phRaw)/65535 - 0.5) * Radians(73)
		p := SphericalToCartesian(r, theta, phi)
		r2, th2, ph2 := CartesianToSpherical(p)
		return almost(r2, r, 1e-12) && almost(th2, theta, 1e-9) && almost(ph2, phi, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCartesianToSphericalOrigin(t *testing.T) {
	r, th, ph := CartesianToSpherical(Vec3{})
	if r != 0 || th != 0 || ph != 0 {
		t.Errorf("origin = (%v,%v,%v)", r, th, ph)
	}
}

func TestSymmetricGrid(t *testing.T) {
	g := NewSymmetricGrid(Radians(36.5), 128)
	if !almost(g.At(0), -Radians(36.5), 1e-15) {
		t.Errorf("first = %v", Degrees(g.At(0)))
	}
	if !almost(g.At(127), Radians(36.5), 1e-15) {
		t.Errorf("last = %v", Degrees(g.At(127)))
	}
	// Symmetry: g.At(i) == -g.At(N-1-i), which TABLESTEER's cosφ folding uses.
	for i := 0; i < g.N; i++ {
		if !almost(g.At(i), -g.At(g.N-1-i), 1e-12) {
			t.Fatalf("grid not symmetric at %d", i)
		}
	}
}

func TestDepthGrid(t *testing.T) {
	g := NewDepthGrid(0.1925, 1000)
	if g.At(0) <= 0 {
		t.Error("first depth must be positive")
	}
	if !almost(g.At(999), 0.1925, 1e-15) {
		t.Errorf("last depth = %v", g.At(999))
	}
	if g.N != 1000 {
		t.Errorf("N = %d", g.N)
	}
}

func TestGridStepValuesContains(t *testing.T) {
	g := Grid{Min: 0, Max: 10, N: 11}
	if g.Step() != 1 {
		t.Errorf("Step = %v", g.Step())
	}
	vals := g.Values()
	if len(vals) != 11 || vals[3] != 3 {
		t.Errorf("Values = %v", vals)
	}
	if !g.Contains(5) || g.Contains(11) || g.Contains(-1) {
		t.Error("Contains misbehaves")
	}
	one := Grid{Min: 4, Max: 4, N: 1}
	if one.At(0) != 4 || one.Step() != 0 {
		t.Error("degenerate grid")
	}
}

func TestVecString(t *testing.T) {
	s := Vec3{0.001, 0, -0.0005}.String()
	if s != "(1.000, 0.000, -0.500) mm" {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkSphericalToCartesian(b *testing.B) {
	for i := 0; i < b.N; i++ {
		SphericalToCartesian(0.1, 0.3, -0.2)
	}
}
