// Per-transmit emission parametrization. The paper's analysis assumes one
// insonification per volume, but every real 3-D system compounds several
// steered transmits per frame: the volume is insonified N times, each shot
// from a different emission reference O ("techniques like synthetic aperture
// imaging rely on repositioning O at every insonification", §V), and the N
// receive beamformations are summed coherently. The Transmit descriptor
// names one such insonification; TransmitProvider lets every delay
// architecture derive a variant of itself for another transmit, reusing the
// transmit leg the exact law already carries (Exact.Origin) — delay tables
// and caches then key their storage by (transmit, nappe), which is exactly
// how the working set multiplies by the transmit count.
package delay

import (
	"fmt"

	"ultrabeam/internal/geom"
)

// Transmit describes one insonification of the volume: the emission
// reference O the transmit leg |S−O| of Eq. (2) is measured from. The zero
// value is the paper's default — emission from the array center. Steering is
// expressed through origin placement: a virtual source behind the z = 0
// aperture plane (negative Z) produces a diverging wave, and lateral X/Y
// offsets steer it, so a transmit set is just a list of origins.
type Transmit struct {
	Origin geom.Vec3 // emission reference O, meters
}

// String renders the transmit for reports.
func (t Transmit) String() string { return "tx@" + t.Origin.String() }

// TransmitProvider is implemented by delay providers that can derive a
// variant of themselves for a different transmit. The derived provider obeys
// the same contracts as the receiver (scalar law is the specification, block
// fills are bit-identical to it); only the transmit leg changes. Providers
// may reject transmits their architecture cannot represent — TABLESTEER's
// folded reference table requires the origin on the z axis, for example —
// in which case they return a descriptive error.
type TransmitProvider interface {
	Provider
	// WithTransmit returns a provider generating delays for tx. The receiver
	// is not modified; derived providers are independent and safe to use
	// concurrently with the receiver.
	WithTransmit(tx Transmit) (Provider, error)
}

// ForTransmit derives a provider for tx from p, which must implement
// TransmitProvider.
func ForTransmit(p Provider, tx Transmit) (Provider, error) {
	tp, ok := p.(TransmitProvider)
	if !ok {
		return nil, fmt.Errorf("delay: provider %s cannot be re-targeted to %v (no TransmitProvider support)",
			p.Name(), tx)
	}
	return tp.WithTransmit(tx)
}

// ForTransmits derives one provider per transmit of the set, in order. An
// empty set yields p itself as the sole entry (the single-insonification
// default).
func ForTransmits(p Provider, txs []Transmit) ([]Provider, error) {
	if len(txs) == 0 {
		return []Provider{p}, nil
	}
	out := make([]Provider, len(txs))
	for i, tx := range txs {
		q, err := ForTransmit(p, tx)
		if err != nil {
			return nil, fmt.Errorf("transmit %d: %w", i, err)
		}
		out[i] = q
	}
	return out, nil
}

// SteeredTransmits returns n diverging-wave insonifications: virtual
// sources depthBehind meters behind the aperture plane, lateral offsets
// evenly spanning ±span/2 along x. n = 1 yields the centered source; n ≤ 0
// yields the single zero-value transmit (emission from the array center, the
// paper's default). This is the standard compounding geometry: each shot
// diverges from a different virtual source, and coherent summation of the
// N receive volumes recovers transmit focusing everywhere.
func SteeredTransmits(n int, depthBehind, span float64) []Transmit {
	if n <= 0 {
		return []Transmit{{}}
	}
	if depthBehind < 0 {
		depthBehind = -depthBehind
	}
	out := make([]Transmit, n)
	for i := range out {
		x := 0.0
		if n > 1 {
			x = -span/2 + span*float64(i)/float64(n-1)
		}
		out[i] = Transmit{Origin: geom.Vec3{X: x, Z: -depthBehind}}
	}
	return out
}

// AxialTransmits returns n on-axis virtual sources with depths evenly
// spanning [zmin, zmax] (negative = behind the aperture). Every origin lies
// on the z axis, so the set is representable by all four architectures —
// TABLESTEER included (one folded reference table per transmit, the §V
// "multiple precalculated delay tables" extension).
func AxialTransmits(n int, zmin, zmax float64) []Transmit {
	if n <= 0 {
		return []Transmit{{}}
	}
	out := make([]Transmit, n)
	for i := range out {
		z := zmin
		if n > 1 {
			z += (zmax - zmin) * float64(i) / float64(n-1)
		}
		out[i] = Transmit{Origin: geom.Vec3{Z: z}}
	}
	return out
}

// WithTransmit implements TransmitProvider for the exact reference: the
// golden model supports any emission origin directly.
func (e *Exact) WithTransmit(tx Transmit) (Provider, error) {
	ne := *e
	ne.Origin = tx.Origin
	return &ne, nil
}
