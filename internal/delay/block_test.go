package delay

import (
	"testing"

	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

func TestLayoutIndexing(t *testing.T) {
	l := Layout{NTheta: 3, NPhi: 4, NX: 5, NY: 2}
	if !l.Valid() {
		t.Fatal("layout should be valid")
	}
	if l.BlockLen() != 3*4*5*2 {
		t.Errorf("BlockLen = %d", l.BlockLen())
	}
	if l.VoxelStride() != 10 {
		t.Errorf("VoxelStride = %d", l.VoxelStride())
	}
	// Index must enumerate [0, BlockLen) exactly once in layout order.
	seen := make([]bool, l.BlockLen())
	want := 0
	for it := 0; it < l.NTheta; it++ {
		for ip := 0; ip < l.NPhi; ip++ {
			for ej := 0; ej < l.NY; ej++ {
				for ei := 0; ei < l.NX; ei++ {
					got := l.Index(it, ip, ei, ej)
					if got != want {
						t.Fatalf("Index(%d,%d,%d,%d) = %d, want %d", it, ip, ei, ej, got, want)
					}
					seen[got] = true
					want++
				}
			}
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("slot %d never indexed", i)
		}
	}
	if (Layout{}).Valid() {
		t.Error("zero layout must be invalid")
	}
}

func TestExactFillNappeBitIdentical(t *testing.T) {
	e, _, _ := smallSetup()
	l := e.Layout()
	dst := make([]float64, l.BlockLen())
	for _, id := range []int{0, e.Vol.Depth.N / 2, e.Vol.Depth.N - 1} {
		e.FillNappe(id, dst)
		for it := 0; it < l.NTheta; it++ {
			for ip := 0; ip < l.NPhi; ip++ {
				for ej := 0; ej < l.NY; ej++ {
					for ei := 0; ei < l.NX; ei++ {
						want := e.DelaySamples(it, ip, id, ei, ej)
						got := dst[l.Index(it, ip, ei, ej)]
						if got != want {
							t.Fatalf("id=%d (%d,%d,%d,%d): block %v != scalar %v",
								id, it, ip, ei, ej, got, want)
						}
					}
				}
			}
		}
	}
}

func TestScalarAdapterMatchesNativeFill(t *testing.T) {
	e, _, _ := smallSetup()
	l := e.Layout()
	adapter := &ScalarAdapter{P: e, L: l}
	if adapter.Name() != e.Name() {
		t.Errorf("adapter name = %q", adapter.Name())
	}
	if adapter.DelaySamples(1, 2, 3, 4, 5) != e.DelaySamples(1, 2, 3, 4, 5) {
		t.Error("adapter scalar path must forward")
	}
	native := make([]float64, l.BlockLen())
	adapted := make([]float64, l.BlockLen())
	e.FillNappe(7, native)
	adapter.FillNappe(7, adapted)
	for i := range native {
		if native[i] != adapted[i] {
			t.Fatalf("slot %d: native %v != adapter %v", i, native[i], adapted[i])
		}
	}
}

func TestAsBlockSelectsNativeOrAdapter(t *testing.T) {
	e, _, _ := smallSetup()
	l := e.Layout()
	if bp := AsBlock(e, l); bp != BlockProvider(e) {
		t.Error("matching layout must return the native provider")
	}
	other := l
	other.NTheta++
	bp := AsBlock(e, other)
	if _, ok := bp.(*ScalarAdapter); !ok {
		t.Errorf("mismatched layout must wrap in ScalarAdapter, got %T", bp)
	}
	if bp.Layout() != other {
		t.Error("adapter must report the requested layout")
	}
}

func TestCompareBlockMatchesCompare(t *testing.T) {
	v := scan.NewVolume(geom.Radians(40), geom.Radians(40), 0.05, 5, 5, 8)
	a := xdcr.NewArray(6, 6, 0.385e-3/2)
	e := NewExact(v, a, geom.Vec3{}, conv)
	// A second exact provider displaced slightly in origin gives nonzero
	// but deterministic errors for the statistics comparison.
	p := NewExact(v, a, geom.Vec3{Z: 0.5e-3}, conv)
	// Reference: the pre-block scalar sweep (Compare with strideE = 1 now
	// routes through CompareBlock, so accumulate it independently here).
	var scalar Stats
	v.Walk(scan.NappeOrder, func(ix scan.Index) {
		for ej := 0; ej < a.NY; ej++ {
			for ei := 0; ei < a.NX; ei++ {
				scalar.Add(p.DelaySamples(ix.Theta, ix.Phi, ix.Depth, ei, ej),
					e.DelaySamples(ix.Theta, ix.Phi, ix.Depth, ei, ej))
			}
		}
	})
	block := CompareBlock(p, e)
	if viaCompare := Compare(p, e, 1); viaCompare != block {
		t.Errorf("Compare(strideE=1) must route through the block path")
	}
	if scalar.N != block.N || scalar.MeanAbs != block.MeanAbs ||
		scalar.MaxAbs != block.MaxAbs || scalar.MaxAbsIndex != block.MaxAbsIndex ||
		scalar.OffIndexCount != block.OffIndexCount {
		t.Errorf("block stats diverge:\n scalar %v\n block  %v", scalar.String(), block.String())
	}
	if block.MaxAbs == 0 {
		t.Error("displaced origin should produce nonzero error")
	}
}
