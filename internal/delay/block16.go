// Narrow delay blocks: the int16 form of the nappe datapath. The paper's
// delay words are small — 14-bit selection indices into an echo window of
// "slightly more than 8000 samples" (§V-B) — yet a float64 block spends
// 8 bytes per delay, 4× the bandwidth and cache residency the hardware
// design point assumes. Block16 stores the *integer selection index* the
// beamformer actually consumes, in 2 bytes per delay. Quantization is
// exact: the beamformer rounds every fractional delay through Index before
// touching an echo buffer, and for any echo window of at most MaxEchoWindow
// samples the saturated int16 index selects the identical sample (indices
// beyond the window read as silence on both paths), so the narrow datapath
// is bit-identical to the float64 reference by construction — not within a
// tolerance.
package delay

import "math"

// MaxEchoWindow is the largest echo-buffer length for which int16 selection
// indices are exact: saturation at math.MaxInt16 must itself land outside
// the window so a saturated index reads silence, exactly like the wide
// index it stands for. Table I windows are ~8.5k samples — a quarter of
// this bound — matching the paper's 13/14-bit index budget.
const MaxEchoWindow = math.MaxInt16

// Block16 is a nappe delay block of quantized selection indices, laid out
// exactly like the float64 block of the same Layout (θ, φ, element row,
// element column). At 2 bytes per delay it carries the same information the
// beamformer uses at a quarter of the float64 footprint.
type Block16 []int16

// Index16 rounds a fractional delay to its int16 echo-buffer selection
// index, saturating out-of-range values. For windows of at most
// MaxEchoWindow samples the saturated extremes are out-of-window on both
// paths, so Index16 and Index select the same echo sample always.
func Index16(samples float64) int16 {
	r := math.Round(samples)
	if !(r < math.MaxInt16) {
		return math.MaxInt16
	}
	if r < math.MinInt16 {
		return math.MinInt16
	}
	return int16(r)
}

// QuantizeNappe converts a filled float64 nappe block into its Block16 form
// slot for slot. dst must hold at least len(src) values.
func QuantizeNappe(dst Block16, src []float64) {
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = Index16(v)
	}
}

// BlockProvider16 is a BlockProvider that can also fill the quantized form
// natively — without materializing a float64 block first. FillNappe16 must
// produce exactly Index16 of the values FillNappe would produce (the
// equivalence tests hold every implementation to it), and like FillNappe it
// must be safe for concurrent use with distinct dst buffers.
type BlockProvider16 interface {
	BlockProvider
	// FillNappe16 writes the quantized delays of depth nappe id into dst
	// following Layout. dst must hold at least Layout().BlockLen() values.
	FillNappe16(id int, dst Block16)
}

// Fill16 fills dst with the quantized block of nappe id through the
// cheapest available path: natively when bp implements BlockProvider16,
// otherwise via a float64 fill into scratch followed by quantization.
// scratch may be nil only when bp is native.
func Fill16(bp BlockProvider, id int, dst Block16, scratch []float64) {
	if n, ok := bp.(BlockProvider16); ok {
		n.FillNappe16(id, dst)
		return
	}
	bp.FillNappe(id, scratch)
	QuantizeNappe(dst, scratch[:bp.Layout().BlockLen()])
}

// FillNappe16 implements BlockProvider16 for the exact reference: the same
// per-voxel transmit-leg hoist as FillNappe with the quantization fused
// into the element loop, so no float64 block is ever materialized.
func (e *Exact) FillNappe16(id int, dst Block16) {
	l := e.Layout()
	elems := e.elementGrid()
	k := 0
	for it := 0; it < l.NTheta; it++ {
		for ip := 0; ip < l.NPhi; ip++ {
			s := e.Vol.FocalPoint(it, ip, id)
			tx := s.Dist(e.Origin)
			for _, d := range elems {
				dst[k] = Index16(e.Conv.SecondsToSamples((tx + s.Dist(d)) / e.Conv.C))
				k++
			}
		}
	}
}

// FillNappe16 implements BlockProvider16 with one scalar call per slot,
// quantizing each delay as it is produced.
func (a *ScalarAdapter) FillNappe16(id int, dst Block16) {
	k := 0
	for it := 0; it < a.L.NTheta; it++ {
		for ip := 0; ip < a.L.NPhi; ip++ {
			for ej := 0; ej < a.L.NY; ej++ {
				for ei := 0; ei < a.L.NX; ei++ {
					dst[k] = Index16(a.P.DelaySamples(it, ip, id, ei, ej))
					k++
				}
			}
		}
	}
}
