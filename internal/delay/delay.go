// Package delay defines the propagation-delay law at the heart of receive
// beamforming (Eq. 2/3 of the paper), the conversion between seconds, meters
// and echo-buffer sample units, and the Provider interface implemented by
// the exact reference, TABLEFREE and TABLESTEER delay generators.
//
// Delays are produced at two granularities. Provider.DelaySamples is the
// scalar law — one (voxel, element) pair per call — and stays the executable
// specification. BlockProvider.FillNappe is the bulk form: one call fills
// the contiguous θ×φ×element delay block of a whole depth nappe, mirroring
// the paper's Algorithm 1 nappe sweep in which both hardware architectures
// amortize per-voxel work (transmit leg, reference-table slice) across the
// aperture. The streaming beamformer consumes nappe blocks; ScalarAdapter
// lifts any plain Provider onto the block interface unchanged. Block fills
// are bit-identical to the scalar law by contract.
//
// One "sample" is 1/fs (31.25 ns at the Table I sampling rate of 32 MHz);
// the delay value used by the beamformer is the sample index into each
// element's echo buffer, so all accuracy figures in the paper — and here —
// are quoted in |off samples|.
package delay

import (
	"fmt"
	"math"

	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

// Converter holds the two physical constants that map geometry to echo
// sample indices: speed of sound c and sampling frequency fs.
type Converter struct {
	C  float64 // speed of sound in the medium, m/s (1540 in tissue)
	Fs float64 // sampling frequency, Hz (32 MHz in Table I)
}

// SecondsToSamples converts a time delay to fractional sample units.
func (cv Converter) SecondsToSamples(t float64) float64 { return t * cv.Fs }

// SamplesToSeconds converts fractional sample units back to seconds.
func (cv Converter) SamplesToSeconds(s float64) float64 { return s / cv.Fs }

// MetersToSamples converts a one-way path length to sample units.
func (cv Converter) MetersToSamples(d float64) float64 { return d * cv.Fs / cv.C }

// SamplesToMeters converts sample units to a one-way path length.
func (cv Converter) SamplesToMeters(s float64) float64 { return s * cv.C / cv.Fs }

// SamplePeriod returns the duration of one sample in seconds.
func (cv Converter) SamplePeriod() float64 { return 1 / cv.Fs }

// TwoWaySeconds evaluates Eq. (2): the propagation time from emission
// reference O to scatterer S and back to element D.
func TwoWaySeconds(o, s, d geom.Vec3, c float64) float64 {
	return (s.Dist(o) + s.Dist(d)) / c
}

// Provider generates two-way delay values, in fractional sample units, for
// every (focal point, element) pair of a fixed volume/array configuration.
// Implementations: the float64 Exact reference below, tablefree.Provider and
// tablesteer.Provider.
type Provider interface {
	// Name identifies the architecture for reports ("exact", "tablefree", ...).
	Name() string
	// DelaySamples returns the two-way delay for focal grid node (it, ip,
	// id) and element (ei, ej), in fractional sample units.
	DelaySamples(it, ip, id, ei, ej int) float64
}

// Index rounds a fractional delay to the integer echo-buffer selection
// index, the quantity the paper compares across implementations ("quantizing
// both to an integer selection index prior to comparison", §VI-A).
//
// This sits on the beamformer's per-delay hot path. Keep math.Round: its
// branchless bit manipulation beats a truncate-and-compare half rule, whose
// f ≥ 0.5 branch is data-dependent on random delay fractions and pays a
// misprediction roughly every other delay (~1.6× slower end to end when
// tried).
func Index(samples float64) int { return int(math.Round(samples)) }

// Exact is the float64 golden-model Provider: Eq. (2) evaluated directly.
// It plays the role of the paper's Matlab high-precision reference.
type Exact struct {
	Vol    scan.Volume
	Arr    xdcr.Array
	Origin geom.Vec3
	Conv   Converter
}

// NewExact builds the reference provider. A zero Origin places the emission
// reference at the array center, the paper's default.
func NewExact(v scan.Volume, a xdcr.Array, origin geom.Vec3, cv Converter) *Exact {
	if cv.C <= 0 || cv.Fs <= 0 {
		panic(fmt.Sprintf("delay: invalid converter %+v", cv))
	}
	return &Exact{Vol: v, Arr: a, Origin: origin, Conv: cv}
}

// Name implements Provider.
func (e *Exact) Name() string { return "exact" }

// DelaySamples implements Provider with direct float64 evaluation.
func (e *Exact) DelaySamples(it, ip, id, ei, ej int) float64 {
	s := e.Vol.FocalPoint(it, ip, id)
	d := e.Arr.ElementPos(ei, ej)
	return e.Conv.SecondsToSamples(TwoWaySeconds(e.Origin, s, d, e.Conv.C))
}

// TransmitSamples returns only the transmit leg |S−O|·fs/c for focal node
// (it, ip, id); the receive leg varies per element, the transmit leg does not.
func (e *Exact) TransmitSamples(it, ip, id int) float64 {
	s := e.Vol.FocalPoint(it, ip, id)
	return e.Conv.MetersToSamples(s.Dist(e.Origin))
}

// ReceiveSamples returns only the receive leg |S−D|·fs/c.
func (e *Exact) ReceiveSamples(it, ip, id, ei, ej int) float64 {
	s := e.Vol.FocalPoint(it, ip, id)
	d := e.Arr.ElementPos(ei, ej)
	return e.Conv.MetersToSamples(s.Dist(d))
}

// MaxTwoWaySamples bounds the largest delay any provider must represent: the
// deepest, most-steered focal point received by the farthest corner element.
// It determines the echo-buffer depth (13-bit indices: "slightly more than
// 8000 samples" in §V-B).
func (e *Exact) MaxTwoWaySamples() float64 {
	worst := 0.0
	v := e.Vol
	corners := [][2]int{{0, 0}, {e.Arr.NX - 1, 0}, {0, e.Arr.NY - 1}, {e.Arr.NX - 1, e.Arr.NY - 1}}
	for _, it := range []int{0, v.Theta.N - 1} {
		for _, ip := range []int{0, v.Phi.N - 1} {
			for _, c := range corners {
				d := e.DelaySamples(it, ip, v.Depth.N-1, c[0], c[1])
				if d > worst {
					worst = d
				}
			}
		}
	}
	return worst
}

// Stats accumulates error statistics between a provider under test and the
// exact reference, in sample units, both raw (fractional) and after
// quantization to selection indices.
type Stats struct {
	N             int
	MeanAbs       float64 // mean |fractional error|
	MaxAbs        float64 // max |fractional error|
	MeanAbsIndex  float64 // mean |index error| after rounding both sides
	MaxAbsIndex   int     // max |index error|
	OffIndexCount int     // how many points had a nonzero index error
	sumAbs        float64
	sumAbsIdx     float64
}

// Add records one (approx, exact) delay pair.
func (st *Stats) Add(approx, exact float64) {
	st.N++
	e := math.Abs(approx - exact)
	st.sumAbs += e
	if e > st.MaxAbs {
		st.MaxAbs = e
	}
	ie := Index(approx) - Index(exact)
	if ie < 0 {
		ie = -ie
	}
	st.sumAbsIdx += float64(ie)
	if ie > st.MaxAbsIndex {
		st.MaxAbsIndex = ie
	}
	if ie != 0 {
		st.OffIndexCount++
	}
	st.MeanAbs = st.sumAbs / float64(st.N)
	st.MeanAbsIndex = st.sumAbsIdx / float64(st.N)
}

// OffIndexFraction returns the fraction of points whose selection index
// differed (the §VI-A "33 % of the echo samples" statistic).
func (st *Stats) OffIndexFraction() float64 {
	if st.N == 0 {
		return 0
	}
	return float64(st.OffIndexCount) / float64(st.N)
}

// Merge folds other into st (for parallel sweeps).
func (st *Stats) Merge(other Stats) {
	if other.N == 0 {
		return
	}
	st.N += other.N
	st.sumAbs += other.sumAbs
	st.sumAbsIdx += other.sumAbsIdx
	if other.MaxAbs > st.MaxAbs {
		st.MaxAbs = other.MaxAbs
	}
	if other.MaxAbsIndex > st.MaxAbsIndex {
		st.MaxAbsIndex = other.MaxAbsIndex
	}
	st.OffIndexCount += other.OffIndexCount
	st.MeanAbs = st.sumAbs / float64(st.N)
	st.MeanAbsIndex = st.sumAbsIdx / float64(st.N)
}

// String renders the statistics in the paper's terms.
func (st *Stats) String() string {
	return fmt.Sprintf("n=%d mean|err|=%.4f max|err|=%.4f samples; index: mean %.4f max %d off %.2f%%",
		st.N, st.MeanAbs, st.MaxAbs, st.MeanAbsIndex, st.MaxAbsIndex, 100*st.OffIndexFraction())
}

// Compare sweeps a subsampled volume/aperture and accumulates provider-vs-
// exact statistics. strideE subsamples elements, the volume is walked as
// given (callers pass a pre-subsampled volume for coarse sweeps). Full-
// aperture sweeps (strideE ≤ 1) run through the block path — both sides are
// generated nappe-at-a-time via FillNappe — which visits the exact same
// pairs in the exact same order, so the statistics are unchanged.
func Compare(p Provider, e *Exact, strideE int) Stats {
	if strideE <= 1 {
		return CompareBlock(p, e)
	}
	var st Stats
	e.Vol.Walk(scan.NappeOrder, func(ix scan.Index) {
		for ej := 0; ej < e.Arr.NY; ej += strideE {
			for ei := 0; ei < e.Arr.NX; ei += strideE {
				st.Add(p.DelaySamples(ix.Theta, ix.Phi, ix.Depth, ei, ej),
					e.DelaySamples(ix.Theta, ix.Phi, ix.Depth, ei, ej))
			}
		}
	})
	return st
}
