package delay

import (
	"math"
	"testing"
	"testing/quick"

	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

var conv = Converter{C: 1540, Fs: 32e6}

func smallSetup() (*Exact, scan.Volume, xdcr.Array) {
	v := scan.NewVolume(geom.Radians(73), geom.Radians(73), 0.1925, 9, 9, 25)
	a := xdcr.NewArray(16, 16, 0.385e-3/2)
	e := NewExact(v, a, geom.Vec3{}, conv)
	return e, v, a
}

func TestConverterRoundTrips(t *testing.T) {
	if got := conv.SecondsToSamples(1e-6); math.Abs(got-32) > 1e-12 {
		t.Errorf("1 µs = %v samples", got)
	}
	if got := conv.SamplesToSeconds(32); math.Abs(got-1e-6) > 1e-18 {
		t.Errorf("32 samples = %v s", got)
	}
	// λ = c/fc = 0.385 mm must be exactly 8 samples at fs = 8·fc.
	if got := conv.MetersToSamples(0.385e-3); math.Abs(got-8) > 1e-9 {
		t.Errorf("λ = %v samples, want 8", got)
	}
	if got := conv.SamplesToMeters(conv.MetersToSamples(0.1)); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("meters round-trip = %v", got)
	}
	if got := conv.SamplePeriod(); math.Abs(got-31.25e-9) > 1e-18 {
		t.Errorf("sample period = %v", got)
	}
}

func TestTwoWaySecondsSymmetricGeometry(t *testing.T) {
	o := geom.Vec3{}
	s := geom.Vec3{Z: 0.077} // 77 mm straight ahead
	d := geom.Vec3{}
	// O = D at origin: two-way time is 2·z/c.
	want := 2 * 0.077 / 1540
	if got := TwoWaySeconds(o, s, d, 1540); math.Abs(got-want) > 1e-15 {
		t.Errorf("two-way = %v, want %v", got, want)
	}
}

func TestExactOnAxisDelay(t *testing.T) {
	e, v, a := smallSetup()
	// Center of an odd θ/φ grid is the unsteered line of sight.
	it, ip := v.Theta.N/2, v.Phi.N/2
	id := v.Depth.N - 1
	s := v.FocalPoint(it, ip, id)
	if math.Abs(s.X) > 1e-12 || math.Abs(s.Y) > 1e-12 {
		t.Fatalf("center line of sight isn't on-axis: %v", s)
	}
	// For the element nearest the center, delay ≈ 2r·fs/c.
	ei, ej := a.NX/2, a.NY/2
	got := e.DelaySamples(it, ip, id, ei, ej)
	r := v.Depth.At(id)
	approx := conv.MetersToSamples(2 * r)
	if math.Abs(got-approx) > 1.0 { // element is within half a pitch of center
		t.Errorf("on-axis delay = %v samples, expected ≈ %v", got, approx)
	}
}

func TestExactDecomposition(t *testing.T) {
	e, v, a := smallSetup()
	_ = v
	_ = a
	f := func(itR, ipR, idR, eiR, ejR uint8) bool {
		it := int(itR) % e.Vol.Theta.N
		ip := int(ipR) % e.Vol.Phi.N
		id := int(idR) % e.Vol.Depth.N
		ei := int(eiR) % e.Arr.NX
		ej := int(ejR) % e.Arr.NY
		sum := e.TransmitSamples(it, ip, id) + e.ReceiveSamples(it, ip, id, ei, ej)
		return math.Abs(sum-e.DelaySamples(it, ip, id, ei, ej)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestExactDelayMonotoneInDepthOnAxis(t *testing.T) {
	e, v, _ := smallSetup()
	it, ip := v.Theta.N/2, v.Phi.N/2
	prev := -1.0
	for id := 0; id < v.Depth.N; id++ {
		d := e.DelaySamples(it, ip, id, 0, 0)
		if d <= prev {
			t.Fatalf("delay not increasing with depth at id=%d: %v <= %v", id, d, prev)
		}
		prev = d
	}
}

func TestMaxTwoWaySamplesMatchesPaperEchoBuffer(t *testing.T) {
	// Full Table I geometry: the echo buffer must hold "slightly more than
	// 8000 samples" (two-way 2×500λ = 8000 plus steering/aperture margin),
	// still within a 13-bit index (8192)... the paper stores 13-bit indices.
	v := scan.NewVolume(geom.Radians(73), geom.Radians(73), 500*0.385e-3, 128, 128, 1000)
	a := xdcr.NewArray(100, 100, 0.385e-3/2)
	e := NewExact(v, a, geom.Vec3{}, conv)
	max := e.MaxTwoWaySamples()
	if max < 8000 {
		t.Errorf("max two-way delay %v should exceed the nominal 8000 samples", max)
	}
	if max > 8500 {
		t.Errorf("max two-way delay %v unexpectedly large for Table I geometry", max)
	}
}

func TestIndexRounding(t *testing.T) {
	if Index(103.49) != 103 || Index(103.5) != 104 || Index(-0.2) != 0 {
		t.Error("Index rounding broken")
	}
}

func TestNewExactPanicsOnBadConverter(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	NewExact(scan.Volume{}, xdcr.Array{NX: 1, NY: 1, Pitch: 1}, geom.Vec3{}, Converter{})
}

func TestStatsAccumulation(t *testing.T) {
	var st Stats
	st.Add(10.0, 10.0) // exact hit
	st.Add(10.6, 10.0) // off by 0.6 → index off by 1
	st.Add(12.0, 10.0) // off by 2 → index off by 2
	if st.N != 3 {
		t.Fatalf("N = %d", st.N)
	}
	if math.Abs(st.MeanAbs-(0+0.6+2)/3) > 1e-12 {
		t.Errorf("MeanAbs = %v", st.MeanAbs)
	}
	if st.MaxAbs != 2 {
		t.Errorf("MaxAbs = %v", st.MaxAbs)
	}
	if st.MaxAbsIndex != 2 || st.OffIndexCount != 2 {
		t.Errorf("index stats: max %d off %d", st.MaxAbsIndex, st.OffIndexCount)
	}
	if math.Abs(st.OffIndexFraction()-2.0/3) > 1e-12 {
		t.Errorf("fraction = %v", st.OffIndexFraction())
	}
}

func TestStatsMerge(t *testing.T) {
	var a, b, whole Stats
	samples := [][2]float64{{1, 1.2}, {5, 5}, {9, 8.1}, {3, 3.4}}
	for i, s := range samples {
		whole.Add(s[0], s[1])
		if i < 2 {
			a.Add(s[0], s[1])
		} else {
			b.Add(s[0], s[1])
		}
	}
	a.Merge(b)
	if a.N != whole.N || math.Abs(a.MeanAbs-whole.MeanAbs) > 1e-12 ||
		a.MaxAbs != whole.MaxAbs || a.MaxAbsIndex != whole.MaxAbsIndex ||
		a.OffIndexCount != whole.OffIndexCount {
		t.Errorf("merge mismatch: %+v vs %+v", a, whole)
	}
	var empty Stats
	a.Merge(empty) // must be a no-op
	if a.N != whole.N {
		t.Error("merging empty stats changed N")
	}
}

func TestStatsString(t *testing.T) {
	var st Stats
	st.Add(1, 1)
	if st.String() == "" {
		t.Error("empty string")
	}
}

func TestCompareExactAgainstItself(t *testing.T) {
	e, _, _ := smallSetup()
	st := Compare(e, e, 4)
	if st.N == 0 {
		t.Fatal("no points compared")
	}
	if st.MaxAbs != 0 || st.MaxAbsIndex != 0 {
		t.Errorf("self-comparison must be exact: %v", st.String())
	}
}

func BenchmarkExactDelay(b *testing.B) {
	e, _, _ := smallSetup()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.DelaySamples(4, 4, i%25, i%16, (i/16)%16)
	}
}
