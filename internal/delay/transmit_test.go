package delay

import (
	"math"
	"testing"

	"ultrabeam/internal/geom"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

func transmitTestExact() *Exact {
	vol := scan.NewVolume(geom.Radians(40), geom.Radians(20), 0.05, 5, 3, 8)
	arr := xdcr.NewArray(4, 4, 0.2e-3)
	return NewExact(vol, arr, geom.Vec3{}, Converter{C: 1540, Fs: 32e6})
}

func TestExactWithTransmitMatchesDirectConstruction(t *testing.T) {
	e := transmitTestExact()
	tx := Transmit{Origin: geom.Vec3{X: 1e-3, Z: -5e-3}}
	q, err := e.WithTransmit(tx)
	if err != nil {
		t.Fatal(err)
	}
	want := NewExact(e.Vol, e.Arr, tx.Origin, e.Conv)
	for it := 0; it < e.Vol.Theta.N; it++ {
		for id := 0; id < e.Vol.Depth.N; id++ {
			if got, w := q.DelaySamples(it, 1, id, 2, 3), want.DelaySamples(it, 1, id, 2, 3); got != w {
				t.Fatalf("(%d,%d): %v != %v", it, id, got, w)
			}
		}
	}
	// The receiver is untouched: zero-origin law unchanged.
	if e.Origin != (geom.Vec3{}) {
		t.Error("WithTransmit mutated the receiver")
	}
	// The derived provider keeps the block/scalar bit-identity contract.
	bp, ok := q.(BlockProvider16)
	if !ok {
		t.Fatal("derived exact provider must stay a BlockProvider16")
	}
	blk := make([]float64, bp.Layout().BlockLen())
	blk16 := make(Block16, bp.Layout().BlockLen())
	for id := 0; id < e.Vol.Depth.N; id++ {
		bp.FillNappe(id, blk)
		bp.FillNappe16(id, blk16)
		k := 0
		for it := 0; it < e.Vol.Theta.N; it++ {
			for ip := 0; ip < e.Vol.Phi.N; ip++ {
				for ej := 0; ej < e.Arr.NY; ej++ {
					for ei := 0; ei < e.Arr.NX; ei++ {
						want := q.DelaySamples(it, ip, id, ei, ej)
						if blk[k] != want {
							t.Fatalf("block fill differs at %d", k)
						}
						if blk16[k] != Index16(want) {
							t.Fatalf("narrow fill differs at %d", k)
						}
						k++
					}
				}
			}
		}
	}
}

func TestForTransmitsDerivesAndRejects(t *testing.T) {
	e := transmitTestExact()
	txs := SteeredTransmits(3, 5e-3, 4e-3)
	provs, err := ForTransmits(e, txs)
	if err != nil {
		t.Fatal(err)
	}
	if len(provs) != 3 {
		t.Fatalf("got %d providers", len(provs))
	}
	// Distinct origins → distinct transmit legs at an off-axis probe point
	// (an on-axis point is equidistant from the ±x sources by symmetry).
	d0 := provs[0].DelaySamples(4, 1, 4, 1, 1)
	d2 := provs[2].DelaySamples(4, 1, 4, 1, 1)
	if d0 == d2 {
		t.Error("steered transmits produced identical delays")
	}
	// Empty set: the provider itself, unwrapped.
	same, err := ForTransmits(e, nil)
	if err != nil || len(same) != 1 || same[0] != Provider(e) {
		t.Errorf("empty transmit set must return the provider itself: %v %v", same, err)
	}
	// A provider without transmit support is rejected with a clear error.
	plain := struct{ Provider }{e}
	if _, err := ForTransmit(plain, Transmit{}); err == nil {
		t.Error("non-TransmitProvider must be rejected")
	}
}

func TestSteeredTransmitsGeometry(t *testing.T) {
	txs := SteeredTransmits(4, 5e-3, 8e-3)
	if len(txs) != 4 {
		t.Fatalf("got %d transmits", len(txs))
	}
	for i, tx := range txs {
		if tx.Origin.Z != -5e-3 {
			t.Errorf("transmit %d: virtual source must sit behind the aperture, z = %v", i, tx.Origin.Z)
		}
	}
	if txs[0].Origin.X != -4e-3 || txs[3].Origin.X != 4e-3 {
		t.Errorf("lateral span endpoints wrong: %v .. %v", txs[0].Origin.X, txs[3].Origin.X)
	}
	// Symmetric set: offsets sum to zero.
	sum := 0.0
	for _, tx := range txs {
		sum += tx.Origin.X
	}
	if math.Abs(sum) > 1e-15 {
		t.Errorf("lateral offsets must be symmetric, sum %v", sum)
	}
	// Degenerate counts collapse to the centered default.
	if one := SteeredTransmits(1, 5e-3, 8e-3); one[0].Origin.X != 0 {
		t.Errorf("single transmit must be centered: %v", one[0])
	}
	if zero := SteeredTransmits(0, 5e-3, 8e-3); len(zero) != 1 || zero[0] != (Transmit{}) {
		t.Errorf("n ≤ 0 must yield the zero transmit: %v", zero)
	}
}

func TestAxialTransmitsGeometry(t *testing.T) {
	txs := AxialTransmits(3, -6e-3, -2e-3)
	if len(txs) != 3 {
		t.Fatalf("got %d transmits", len(txs))
	}
	for i, tx := range txs {
		if tx.Origin.X != 0 || tx.Origin.Y != 0 {
			t.Errorf("transmit %d off axis: %v", i, tx.Origin)
		}
	}
	if txs[0].Origin.Z != -6e-3 || txs[1].Origin.Z != -4e-3 || txs[2].Origin.Z != -2e-3 {
		t.Errorf("axial spacing wrong: %v", txs)
	}
}
