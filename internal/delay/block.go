// Block-granular delay generation: the nappe-at-a-time counterpart of the
// scalar Provider interface. The paper's two architectures both exploit the
// Algorithm 1 nappe sweep — all (θ, φ, element) delays of one depth slice
// are produced together, amortizing per-voxel work across the aperture and
// per-nappe work across the whole steering plane. BlockProvider is the
// software form of that datapath: one FillNappe call materializes a full
// θ×φ×element delay plane into a caller-owned contiguous buffer, removing
// the per-delay virtual dispatch that makes the scalar path the software
// analogue of the random-access table problem (§II-B).
package delay

import (
	"fmt"

	"ultrabeam/internal/geom"
)

// Layout describes the stride order of a nappe delay block: θ outermost,
// then φ, then element row ej, then element column ei fastest. The element
// plane of one voxel is therefore contiguous and indexed exactly like
// xdcr.Array.Index (ej·NX + ei), so the beamformer walks a nappe block and
// its apodization table with the same linear cursor.
type Layout struct {
	NTheta, NPhi int // steering grid of the nappe
	NX, NY       int // element counts along x and y
}

// BlockLen returns the element count of one nappe block.
func (l Layout) BlockLen() int { return l.NTheta * l.NPhi * l.NX * l.NY }

// VoxelStride returns the per-voxel element-plane length (NX·NY).
func (l Layout) VoxelStride() int { return l.NX * l.NY }

// Index linearizes (it, ip, ei, ej) into a nappe block.
func (l Layout) Index(it, ip, ei, ej int) int {
	return ((it*l.NPhi+ip)*l.NY+ej)*l.NX + ei
}

// Valid reports whether every dimension is positive.
func (l Layout) Valid() bool {
	return l.NTheta > 0 && l.NPhi > 0 && l.NX > 0 && l.NY > 0
}

// String renders the block geometry.
func (l Layout) String() string {
	return fmt.Sprintf("%d×%dθφ × %d×%d elements", l.NTheta, l.NPhi, l.NX, l.NY)
}

// BlockProvider generates delays one depth nappe at a time. FillNappe must
// produce values bit-identical to DelaySamples — the block path changes the
// schedule of the computation, never its arithmetic — so the scalar method
// remains the executable specification and the equivalence tests hold both
// implementations to it.
//
// FillNappe must be safe for concurrent use by multiple goroutines with
// distinct dst buffers: the streaming beamformer calls it from every worker.
type BlockProvider interface {
	Provider
	// Layout reports the block geometry this provider fills.
	Layout() Layout
	// FillNappe writes the delays of depth nappe id into dst following
	// Layout. dst must hold at least Layout().BlockLen() values.
	FillNappe(id int, dst []float64)
}

// AsBlock returns p as a BlockProvider filling blocks of layout want: p
// itself when it already implements the interface for that geometry, or a
// ScalarAdapter otherwise — so any plain Provider works on the block path
// unchanged, it just pays the per-delay dispatch the native fills avoid.
func AsBlock(p Provider, want Layout) BlockProvider {
	if bp, ok := p.(BlockProvider); ok && bp.Layout() == want {
		return bp
	}
	return &ScalarAdapter{P: p, L: want}
}

// ScalarAdapter lifts a scalar Provider onto the block interface by calling
// DelaySamples once per block slot in layout order.
type ScalarAdapter struct {
	P Provider
	L Layout
}

// Name implements Provider, forwarding to the wrapped provider.
func (a *ScalarAdapter) Name() string { return a.P.Name() }

// DelaySamples implements Provider, forwarding to the wrapped provider.
func (a *ScalarAdapter) DelaySamples(it, ip, id, ei, ej int) float64 {
	return a.P.DelaySamples(it, ip, id, ei, ej)
}

// Layout implements BlockProvider.
func (a *ScalarAdapter) Layout() Layout { return a.L }

// FillNappe implements BlockProvider with one scalar call per slot.
func (a *ScalarAdapter) FillNappe(id int, dst []float64) {
	k := 0
	for it := 0; it < a.L.NTheta; it++ {
		for ip := 0; ip < a.L.NPhi; ip++ {
			for ej := 0; ej < a.L.NY; ej++ {
				for ei := 0; ei < a.L.NX; ei++ {
					dst[k] = a.P.DelaySamples(it, ip, id, ei, ej)
					k++
				}
			}
		}
	}
}

// Layout implements BlockProvider for the exact reference.
func (e *Exact) Layout() Layout {
	return Layout{NTheta: e.Vol.Theta.N, NPhi: e.Vol.Phi.N, NX: e.Arr.NX, NY: e.Arr.NY}
}

// elementGrid materializes the element positions in block order (ej·NX+ei),
// the per-nappe hoist both fill flavours share.
func (e *Exact) elementGrid() []geom.Vec3 {
	l := e.Layout()
	elems := make([]geom.Vec3, l.NX*l.NY)
	for ej := 0; ej < l.NY; ej++ {
		for ei := 0; ei < l.NX; ei++ {
			elems[ej*l.NX+ei] = e.Arr.ElementPos(ei, ej)
		}
	}
	return elems
}

// FillNappe implements BlockProvider: the focal point and its transmit leg
// |S−O| are computed once per voxel and reused across the whole element
// plane (the per-element work drops from two square roots to one), with the
// remaining arithmetic ordered exactly as DelaySamples orders it.
func (e *Exact) FillNappe(id int, dst []float64) {
	l := e.Layout()
	elems := e.elementGrid()
	k := 0
	for it := 0; it < l.NTheta; it++ {
		for ip := 0; ip < l.NPhi; ip++ {
			s := e.Vol.FocalPoint(it, ip, id)
			tx := s.Dist(e.Origin)
			for _, d := range elems {
				dst[k] = e.Conv.SecondsToSamples((tx + s.Dist(d)) / e.Conv.C)
				k++
			}
		}
	}
}

// CompareBlock sweeps the full volume and aperture nappe-by-nappe through
// the block path of both providers and accumulates the same statistics as
// Compare with strideE = 1 — the bulk form the §VI-A accuracy sweeps use
// when the whole element plane is wanted anyway.
func CompareBlock(p Provider, e *Exact) Stats {
	layout := e.Layout()
	bp := AsBlock(p, layout)
	approx := make([]float64, layout.BlockLen())
	exact := make([]float64, layout.BlockLen())
	var st Stats
	for id := 0; id < e.Vol.Depth.N; id++ {
		bp.FillNappe(id, approx)
		e.FillNappe(id, exact)
		for k := range exact {
			st.Add(approx[k], exact[k])
		}
	}
	return st
}
