package delay

import (
	"math"
	"testing"
)

func TestIndex16MatchesIndex(t *testing.T) {
	// Inside the int16 range the quantized index must equal the wide one
	// exactly — same math.Round, no tolerance.
	cases := []float64{0, 0.4, 0.5, 0.6, 1.5, 2.5, -0.4, -0.5, -1.5,
		123.49, 123.5, 8000.2, 32766.4, 32766.5, -32767.2}
	for _, v := range cases {
		if got, want := Index16(v), Index(v); int(got) != want {
			t.Errorf("Index16(%v) = %d, want %d", v, got, want)
		}
	}
}

func TestIndex16Saturates(t *testing.T) {
	cases := []struct {
		in   float64
		want int16
	}{
		{math.MaxInt16, math.MaxInt16},
		{math.MaxInt16 + 0.4, math.MaxInt16},
		{math.MaxInt16 + 1, math.MaxInt16},
		{1e12, math.MaxInt16},
		{math.Inf(1), math.MaxInt16},
		{math.MinInt16, math.MinInt16},
		{math.MinInt16 - 1, math.MinInt16},
		{-1e12, math.MinInt16},
		{math.Inf(-1), math.MinInt16},
	}
	for _, c := range cases {
		if got := Index16(c.in); got != c.want {
			t.Errorf("Index16(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	// Saturated extremes must stay out-of-window for any window the narrow
	// path accepts: MaxInt16 ≥ MaxEchoWindow and MinInt16 < 0.
	if MaxEchoWindow > math.MaxInt16 {
		t.Error("MaxEchoWindow admits windows the saturated index could alias into")
	}
}

func TestQuantizeNappeMatchesSlotwiseIndex16(t *testing.T) {
	src := []float64{0.2, -3.7, 40000, -40000, 812.5, 811.5}
	dst := make(Block16, len(src))
	QuantizeNappe(dst, src)
	for i, v := range src {
		if dst[i] != Index16(v) {
			t.Errorf("slot %d: %d != Index16(%v) = %d", i, dst[i], v, Index16(v))
		}
	}
}

func TestExactFillNappe16BitIdentical(t *testing.T) {
	// The native quantized fill must equal QuantizeNappe over the float
	// fill, slot for slot — the BlockProvider16 contract.
	e, _, _ := smallSetup()
	l := e.Layout()
	wide := make([]float64, l.BlockLen())
	want := make(Block16, l.BlockLen())
	got := make(Block16, l.BlockLen())
	for _, id := range []int{0, e.Vol.Depth.N / 2, e.Vol.Depth.N - 1} {
		e.FillNappe(id, wide)
		QuantizeNappe(want, wide)
		e.FillNappe16(id, got)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("id=%d slot %d: native %d != quantized %d", id, k, got[k], want[k])
			}
		}
	}
}

func TestScalarAdapterFillNappe16(t *testing.T) {
	e, _, _ := smallSetup()
	l := e.Layout()
	adapter := &ScalarAdapter{P: e, L: l}
	native := make(Block16, l.BlockLen())
	adapted := make(Block16, l.BlockLen())
	e.FillNappe16(3, native)
	adapter.FillNappe16(3, adapted)
	for k := range native {
		if native[k] != adapted[k] {
			t.Fatalf("slot %d: native %d != adapter %d", k, native[k], adapted[k])
		}
	}
}

func TestFill16NativeAndScratchPaths(t *testing.T) {
	e, _, _ := smallSetup()
	l := e.Layout()
	want := make(Block16, l.BlockLen())
	e.FillNappe16(5, want)

	native := make(Block16, l.BlockLen())
	Fill16(e, 5, native, nil) // Exact is native: no scratch needed

	type wideOnly struct{ BlockProvider } // hides FillNappe16
	scratch := make([]float64, l.BlockLen())
	quantized := make(Block16, l.BlockLen())
	Fill16(wideOnly{e}, 5, quantized, scratch)

	for k := range want {
		if native[k] != want[k] {
			t.Fatalf("native Fill16 slot %d: %d != %d", k, native[k], want[k])
		}
		if quantized[k] != want[k] {
			t.Fatalf("scratch Fill16 slot %d: %d != %d", k, quantized[k], want[k])
		}
	}
}
