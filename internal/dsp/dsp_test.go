package dsp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Error("sinc(0) != 1")
	}
	for _, k := range []float64{1, 2, 3, -4} {
		if math.Abs(Sinc(k)) > 1e-15 {
			t.Errorf("sinc(%v) = %v, want 0", k, Sinc(k))
		}
	}
	if math.Abs(Sinc(0.5)-2/math.Pi) > 1e-12 {
		t.Errorf("sinc(0.5) = %v", Sinc(0.5))
	}
}

func TestLowpassFIRDCGain(t *testing.T) {
	h, err := LowpassFIR(0.2, 31)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, v := range h {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("DC gain = %v", sum)
	}
	// Linear phase: symmetric taps.
	for i := range h {
		if math.Abs(h[i]-h[len(h)-1-i]) > 1e-12 {
			t.Fatalf("taps not symmetric at %d", i)
		}
	}
}

func TestLowpassFIRFrequencyResponse(t *testing.T) {
	h, err := LowpassFIR(0.1, 63)
	if err != nil {
		t.Fatal(err)
	}
	gain := func(f float64) float64 {
		re, im := 0.0, 0.0
		for n, v := range h {
			re += v * math.Cos(2*math.Pi*f*float64(n))
			im -= v * math.Sin(2*math.Pi*f*float64(n))
		}
		return math.Hypot(re, im)
	}
	if g := gain(0.02); g < 0.95 || g > 1.05 {
		t.Errorf("passband gain = %v", g)
	}
	if g := gain(0.25); g > 0.01 {
		t.Errorf("stopband gain = %v (want < -40 dB)", g)
	}
}

func TestLowpassFIRValidation(t *testing.T) {
	for _, tc := range []struct {
		cutoff float64
		taps   int
	}{{0, 31}, {0.5, 31}, {0.2, 2}, {0.2, 30}} {
		if _, err := LowpassFIR(tc.cutoff, tc.taps); err == nil {
			t.Errorf("LowpassFIR(%v, %d) should fail", tc.cutoff, tc.taps)
		}
	}
}

func TestConvolveIdentity(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := Convolve(x, []float64{1})
	for i := range x {
		if y[i] != x[i] {
			t.Fatalf("identity convolution broken at %d", i)
		}
	}
	if Convolve(nil, []float64{1}) != nil || Convolve(x, nil) != nil {
		t.Error("empty inputs should give nil")
	}
}

func TestConvolveShiftAlignment(t *testing.T) {
	// A centered impulse kernel must not shift the signal ("same" mode).
	x := []float64{0, 0, 1, 0, 0}
	h := []float64{0, 1, 0} // 3-tap identity centered
	y := Convolve(x, h)
	if y[2] != 1 || y[1] != 0 || y[3] != 0 {
		t.Errorf("convolution misaligned: %v", y)
	}
}

func TestDemodulateRecoversEnvelope(t *testing.T) {
	// A pure tone at f0 with Gaussian envelope: envelope detection must
	// recover the envelope peak position and approximate amplitude.
	fs, f0 := 32e6, 4e6
	n := 800
	rf := make([]float64, n)
	center := 400.0
	sigma := 40.0
	for i := range rf {
		tEnv := (float64(i) - center) / sigma
		rf[i] = math.Exp(-tEnv*tEnv/2) * math.Cos(2*math.Pi*f0/fs*float64(i))
	}
	env, err := EnvelopeDetect(rf, f0, fs)
	if err != nil {
		t.Fatal(err)
	}
	p := PeakIndex(env)
	if p < 390 || p > 410 {
		t.Errorf("envelope peak at %d, want ≈400", p)
	}
	if env[p] < 0.8 || env[p] > 1.2 {
		t.Errorf("envelope peak amplitude = %v, want ≈1", env[p])
	}
	// Envelope must be smooth: no residual carrier ripple beyond a few %.
	ripple := 0.0
	for i := 395; i <= 405; i++ {
		d := math.Abs(env[i] - env[i-1])
		if d > ripple {
			ripple = d
		}
	}
	if ripple > 0.05 {
		t.Errorf("carrier ripple %v on envelope top", ripple)
	}
}

func TestEnvelopeNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rf := make([]float64, 128)
		s := seed
		for i := range rf {
			s = s*6364136223846793005 + 1442695040888963407
			rf[i] = float64(int32(s>>33)) / math.MaxInt32
		}
		env, err := EnvelopeDetect(rf, 4e6, 32e6)
		if err != nil {
			return false
		}
		for _, v := range env {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestLogCompress(t *testing.T) {
	env := []float64{1, 0.1, 0.01, 0, -1}
	db := LogCompress(env, 40)
	if db[0] != 0 {
		t.Errorf("peak must map to 0 dB, got %v", db[0])
	}
	if math.Abs(db[1]+20) > 1e-12 {
		t.Errorf("0.1 → %v dB, want -20", db[1])
	}
	if db[2] != -40 {
		t.Errorf("0.01 → %v dB, want clamp at -40", db[2])
	}
	if db[3] != -40 || db[4] != -40 {
		t.Error("non-positive values must clamp")
	}
	allZero := LogCompress([]float64{0, 0}, 60)
	if allZero[0] != -60 || allZero[1] != -60 {
		t.Error("all-zero envelope maps to floor")
	}
}

func TestDecimate(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4, 5, 6}
	y := Decimate(x, 3)
	want := []float64{0, 3, 6}
	if len(y) != len(want) {
		t.Fatalf("len = %d", len(y))
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("decimate[%d] = %v", i, y[i])
		}
	}
	same := Decimate(x, 1)
	same[0] = 99
	if x[0] == 99 {
		t.Error("factor-1 decimation must copy")
	}
}

func TestPeakIndex(t *testing.T) {
	if PeakIndex(nil) != -1 {
		t.Error("empty input")
	}
	if PeakIndex([]float64{1, 5, 2, 5}) != 1 {
		t.Error("first max on ties")
	}
}

func TestFWHMTriangle(t *testing.T) {
	// Symmetric triangle of height 1, base 2w: FWHM = w.
	w := 20
	x := make([]float64, 2*w+1)
	for i := range x {
		d := math.Abs(float64(i - w))
		x[i] = 1 - d/float64(w)
	}
	got := FWHM(x)
	if math.Abs(got-float64(w)) > 0.01 {
		t.Errorf("triangle FWHM = %v, want %d", got, w)
	}
}

func TestFWHMGaussian(t *testing.T) {
	sigma := 15.0
	n := 200
	x := make([]float64, n)
	for i := range x {
		d := (float64(i) - 100) / sigma
		x[i] = math.Exp(-d * d / 2)
	}
	want := 2 * math.Sqrt(2*math.Ln2) * sigma // 2.355 σ
	if got := FWHM(x); math.Abs(got-want) > 0.5 {
		t.Errorf("gaussian FWHM = %v, want %v", got, want)
	}
}

func TestFWHMDegenerate(t *testing.T) {
	if FWHM(nil) != 0 {
		t.Error("empty")
	}
	if FWHM([]float64{0, 0}) != 0 {
		t.Error("flat zero")
	}
}

func TestRMS(t *testing.T) {
	if RMS(nil) != 0 {
		t.Error("empty RMS")
	}
	if got := RMS([]float64{3, 4, 3, 4}); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMS = %v", got)
	}
}

func BenchmarkEnvelopeDetect(b *testing.B) {
	rf := make([]float64, 4096)
	for i := range rf {
		rf[i] = math.Sin(2 * math.Pi * 0.125 * float64(i))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := EnvelopeDetect(rf, 4e6, 32e6); err != nil {
			b.Fatal(err)
		}
	}
}
