// Package dsp supplies the signal-processing substrate of the imaging
// pipeline built around the delay generators: FIR filter design, IQ
// demodulation, envelope detection and log compression. The beamforming
// experiments use it to turn delay-and-sum RF output into B-mode-style
// magnitude data so that point-spread-function metrics can compare delay
// architectures the way the paper's image-quality argument (§II-A) frames
// it.
package dsp

import (
	"errors"
	"math"
)

// Sinc is the normalized sinc function sin(πx)/(πx).
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}

// LowpassFIR designs a windowed-sinc linear-phase lowpass filter with the
// given normalized cutoff (cycles/sample, 0 < cutoff < 0.5) and odd length.
// The Hamming window keeps stopband ripple below ≈−53 dB, ample for
// envelope extraction. Coefficients are normalized to unit DC gain.
func LowpassFIR(cutoff float64, taps int) ([]float64, error) {
	if cutoff <= 0 || cutoff >= 0.5 {
		return nil, errors.New("dsp: cutoff must be in (0, 0.5)")
	}
	if taps < 3 || taps%2 == 0 {
		return nil, errors.New("dsp: taps must be odd and ≥ 3")
	}
	h := make([]float64, taps)
	mid := (taps - 1) / 2
	sum := 0.0
	for i := range h {
		n := float64(i - mid)
		w := 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(taps-1))
		h[i] = 2 * cutoff * Sinc(2*cutoff*n) * w
		sum += h[i]
	}
	for i := range h {
		h[i] /= sum
	}
	return h, nil
}

// Convolve returns the "same"-length convolution of x with kernel h: output
// sample i aligns with input sample i (group delay removed for odd-length
// linear-phase kernels).
func Convolve(x, h []float64) []float64 {
	if len(x) == 0 || len(h) == 0 {
		return nil
	}
	out := make([]float64, len(x))
	mid := (len(h) - 1) / 2
	for i := range x {
		acc := 0.0
		for k, hk := range h {
			j := i + mid - k
			if j >= 0 && j < len(x) {
				acc += hk * x[j]
			}
		}
		out[i] = acc
	}
	return out
}

// IQ holds a demodulated baseband pair.
type IQ struct {
	I, Q []float64
}

// Demodulate mixes the RF signal down from carrier f0 (Hz) at sample rate
// fs and lowpass-filters both rails. The resulting complex baseband has the
// signal envelope as magnitude. cutoff is the normalized lowpass cutoff;
// a good default is 1.5×bandwidth/fs.
func Demodulate(rf []float64, f0, fs, cutoff float64, taps int) (IQ, error) {
	lp, err := LowpassFIR(cutoff, taps)
	if err != nil {
		return IQ{}, err
	}
	i := make([]float64, len(rf))
	q := make([]float64, len(rf))
	w := 2 * math.Pi * f0 / fs
	for n, x := range rf {
		ph := w * float64(n)
		i[n] = 2 * x * math.Cos(ph)
		q[n] = -2 * x * math.Sin(ph)
	}
	return IQ{I: Convolve(i, lp), Q: Convolve(q, lp)}, nil
}

// Envelope returns |I+jQ| per sample.
func (iq IQ) Envelope() []float64 {
	out := make([]float64, len(iq.I))
	for n := range out {
		out[n] = math.Hypot(iq.I[n], iq.Q[n])
	}
	return out
}

// EnvelopeDetect is the one-call pipeline: demodulate at f0 and return the
// envelope. Suitable defaults: cutoff = f0/fs, taps = 31.
func EnvelopeDetect(rf []float64, f0, fs float64) ([]float64, error) {
	iq, err := Demodulate(rf, f0, fs, f0/fs, 31)
	if err != nil {
		return nil, err
	}
	return iq.Envelope(), nil
}

// LogCompress maps an envelope to decibels relative to its own maximum,
// clamped at -dynamicRange dB (standard B-mode display compression).
func LogCompress(env []float64, dynamicRange float64) []float64 {
	maxV := 0.0
	for _, v := range env {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(env))
	if maxV == 0 {
		for i := range out {
			out[i] = -dynamicRange
		}
		return out
	}
	for i, v := range env {
		if v <= 0 {
			out[i] = -dynamicRange
			continue
		}
		db := 20 * math.Log10(v/maxV)
		if db < -dynamicRange {
			db = -dynamicRange
		}
		out[i] = db
	}
	return out
}

// Decimate keeps every factor-th sample (after the caller has bandlimited).
func Decimate(x []float64, factor int) []float64 {
	if factor <= 1 {
		out := make([]float64, len(x))
		copy(out, x)
		return out
	}
	out := make([]float64, 0, (len(x)+factor-1)/factor)
	for i := 0; i < len(x); i += factor {
		out = append(out, x[i])
	}
	return out
}

// PeakIndex returns the index of the largest value (first on ties), or -1
// for empty input.
func PeakIndex(x []float64) int {
	best, idx := math.Inf(-1), -1
	for i, v := range x {
		if v > best {
			best, idx = v, i
		}
	}
	return idx
}

// FWHM measures the full width at half maximum around the global peak, in
// samples, using linear interpolation at the half-power crossings. It
// returns 0 for signals without a proper peak.
func FWHM(x []float64) float64 {
	p := PeakIndex(x)
	if p < 0 || x[p] <= 0 {
		return 0
	}
	half := x[p] / 2
	left := 0.0
	for i := p; i > 0; i-- {
		if x[i-1] <= half {
			frac := (x[i] - half) / (x[i] - x[i-1])
			left = float64(p-i) + frac
			break
		}
		if i == 1 {
			left = float64(p)
		}
	}
	right := 0.0
	for i := p; i < len(x)-1; i++ {
		if x[i+1] <= half {
			frac := (x[i] - half) / (x[i] - x[i+1])
			right = float64(i-p) + frac
			break
		}
		if i == len(x)-2 {
			right = float64(len(x) - 1 - p)
		}
	}
	return left + right
}

// RMS returns the root-mean-square of x (0 for empty input).
func RMS(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range x {
		s += v * v
	}
	return math.Sqrt(s / float64(len(x)))
}
