package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecodeFrame throws arbitrary bytes at the full frame decode path —
// header validation, chunk de-framing, and both streaming decoders — and
// asserts the only outcomes are a clean error or a frame whose header
// passed Validate. The seed corpus covers every valid encoding plus the
// malformed-header families TestReadHeaderRejectsMalformed enumerates.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(mutate func([]byte)) []byte {
		src := testSamples(3 * 11)
		q, scale := QuantizeI16(src)
		fr := &Frame{Header: header(EncodingI16, 3, 11, scale), I16: q}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr, 16); err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		b := buf.Bytes()
		if mutate != nil {
			mutate(b)
		}
		return b
	}
	// Valid frames, one per encoding.
	f.Add(seed(nil))
	for _, enc := range []Encoding{EncodingF64, EncodingF32} {
		src := testSamples(2 * 9)
		fr := &Frame{Header: header(enc, 2, 9, 0)}
		if enc == EncodingF64 {
			fr.F64 = src
		} else {
			fr.F32 = make([]float32, len(src))
			for i, v := range src {
				fr.F32[i] = float32(v)
			}
		}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr, 0); err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		f.Add(buf.Bytes())
	}
	// Malformed-header corpus: every rejection family gets a seed.
	f.Add(seed(func(b []byte) { copy(b, "NOPE") }))                                             // magic
	f.Add(seed(func(b []byte) { b[4] = 2 }))                                                    // version
	f.Add(seed(func(b []byte) { b[5] = 200 }))                                                  // encoding
	f.Add(seed(func(b []byte) { b[7] = 0xff }))                                                 // flags
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) }))                     // zero elements
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint32(b[8:], math.MaxUint32) }))        // huge elements
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint32(b[12:], math.MaxUint32) }))       // huge window
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint16(b[16:], 9) }))                    // tx index ≥ count
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint32(b[20:], math.Float32bits(-1)) })) // negative scale
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 1) }))                    // payload mismatch
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint32(b[HeaderBytes:], 0) }))           // zero chunk
	f.Add(seed(func(b []byte) { binary.LittleEndian.PutUint32(b[HeaderBytes:], MaxChunk+1) }))  // giant chunk
	f.Add(seed(nil)[:HeaderBytes+7])                                                            // truncated payload
	f.Add(seed(nil)[:13])                                                                       // truncated header
	f.Add([]byte{})
	// Torn-frame corpus: the cine stream reconnects after a client dies
	// mid-upload, so every structurally distinct truncation point a torn
	// TCP stream can produce gets a seed — the decoders must report all of
	// them as clean errors, never short-read garbage or a hang.
	full := seed(nil)
	f.Add(full[:HeaderBytes])        // header complete, no chunk prefix
	f.Add(full[:HeaderBytes+2])      // torn inside a chunk length prefix
	f.Add(full[:HeaderBytes+4])      // chunk prefix complete, zero payload bytes
	f.Add(full[:HeaderBytes+4+9])    // torn mid-sample (odd byte of an i16)
	f.Add(full[:HeaderBytes+4+16])   // cut exactly at a chunk boundary
	f.Add(full[:HeaderBytes+4+16+2]) // torn inside the second chunk prefix
	f.Add(full[:len(full)-1])        // one byte short of a complete frame
	{
		src := testSamples(2 * 9)
		fr := &Frame{Header: header(EncodingF64, 2, 9, 0), F64: src}
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr, 0); err != nil {
			f.Fatalf("seed frame: %v", err)
		}
		b := buf.Bytes()
		f.Add(b[:HeaderBytes+4+11]) // torn mid-sample (f64 lane)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		h, err := ReadHeader(r)
		if err != nil {
			return // rejected before any payload byte — the contract
		}
		if err := h.Validate(); err != nil {
			t.Fatalf("ReadHeader returned an invalid header %+v: %v", h, err)
		}
		// Cap what a fuzz input may make us allocate; real frames are far
		// larger, but the decoders must stay correct at any accepted size.
		if h.PayloadBytes() > 1<<20 {
			return
		}
		planeR := bytes.NewReader(data[len(data)-r.Len():])
		stride := h.Window + 1
		plane := make([]float32, h.Elements*stride)
		errPlane := DecodePlane(planeR, h, plane, stride)

		f64R := bytes.NewReader(data[len(data)-r.Len():])
		dst := make([]float64, h.Samples())
		errF64 := DecodeF64(f64R, h, dst)

		// Both decoders walk the same chunk stream: they must agree on
		// whether the payload is well-formed.
		if (errPlane == nil) != (errF64 == nil) {
			t.Fatalf("decoder disagreement: DecodePlane err=%v, DecodeF64 err=%v", errPlane, errF64)
		}
		if errPlane != nil {
			return
		}
		// And on the sample values (modulo the float32 narrowing DecodeF64
		// does not perform for f64 payloads).
		for d := 0; d < h.Elements; d++ {
			for j := 0; j < h.Window; j++ {
				want := float32(dst[d*h.Window+j])
				got := plane[d*stride+j]
				if math.Float32bits(got) != math.Float32bits(want) && !(math.IsNaN(float64(got)) && math.IsNaN(float64(want))) {
					t.Fatalf("sample (%d,%d): plane %v vs f64 %v", d, j, got, want)
				}
			}
		}
	})
}
