package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// This file is the relay half of the wire format: verbatim forwarding for
// a proxy that sits between a cine client and a backend. A relay must
// never re-encode — an i16 frame that were decoded and re-quantized would
// pick a new scale factor and change sample values, breaking the
// bit-identical contract the cluster router guarantees. So frames and
// volumes cross the proxy as raw bytes: the relay parses only what it
// needs to route (the already-read frame header, the volume status byte)
// and copies everything else untouched.

// CopyFrame forwards one frame whose header h the caller has already read
// (and validated) from src: it re-marshals the header to dst byte for byte
// and relays the chunked payload verbatim — chunk prefixes included, no
// decode, no re-quantization. The copy is incremental (chunk by chunk), so
// a relay makes progress before the frame completes and never buffers a
// whole payload. Chunk framing is validated exactly as a decoder would:
// a zero, oversized or payload-overrunning prefix is malformed.
func CopyFrame(dst io.Writer, src io.Reader, h Header) error {
	if err := h.Validate(); err != nil {
		return err
	}
	var hdr [HeaderBytes]byte
	h.marshal(hdr[:])
	if _, err := dst.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: relaying frame header: %w", err)
	}
	remaining := h.PayloadBytes()
	var pre [4]byte
	for remaining > 0 {
		if _, err := io.ReadFull(src, pre[:]); err != nil {
			return fmt.Errorf("wire: reading chunk prefix: %w", err)
		}
		n := binary.LittleEndian.Uint32(pre[:])
		if n == 0 || n > MaxChunk {
			return fmt.Errorf("wire: chunk length %d outside (0, %d]", n, MaxChunk)
		}
		if int64(n) > remaining {
			return fmt.Errorf("wire: chunk of %d bytes overruns the %d payload bytes still expected", n, remaining)
		}
		if _, err := dst.Write(pre[:]); err != nil {
			return fmt.Errorf("wire: relaying chunk prefix: %w", err)
		}
		if _, err := io.CopyN(dst, src, int64(n)); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return fmt.Errorf("wire: relaying frame payload: %w", err)
		}
		remaining -= int64(n)
	}
	return nil
}

// CopyVolume relays one volume reply from src to dst verbatim and returns
// its status byte. The one exception is StatusGoAway: a drain notice is
// hop-by-hop — it tells the peer that sent frames on *this connection* to
// go elsewhere, and a relay that forwarded it would tear down a client
// whose router is about to re-home the stream transparently. A GOAWAY is
// therefore consumed (its message read and discarded) and reported via the
// returned status with nothing written to dst; every other status — OK
// volumes, per-compound errors, overload pushback — is end-to-end and
// crosses unmodified. maxPayload caps the accepted payload (≤0 = 1 GiB).
//
// Unlike CopyFrame, the payload is buffered before anything reaches dst:
// volumes are small next to frames, and a backend that dies mid-volume
// must leave the client stream untouched — the relay sees the read error,
// writes nothing, and the unanswered compound re-homes whole.
func CopyVolume(dst io.Writer, src io.Reader, maxPayload int64) (uint8, error) {
	var raw [volHeaderBytes]byte
	if _, err := io.ReadFull(src, raw[:]); err != nil {
		return 0, fmt.Errorf("wire: reading volume header: %w", err)
	}
	if string(raw[0:4]) != volMagic {
		return 0, fmt.Errorf("wire: bad volume magic %q", raw[0:4])
	}
	if raw[6] != 0 || raw[7] != 0 {
		return 0, fmt.Errorf("wire: reserved volume bytes not 0")
	}
	status := raw[4]
	payload := binary.LittleEndian.Uint64(raw[20:])
	if maxPayload <= 0 {
		maxPayload = 1 << 30
	}
	if payload > uint64(maxPayload) {
		return 0, fmt.Errorf("wire: volume payload %d bytes exceeds cap %d", payload, maxPayload)
	}
	if status == StatusGoAway {
		if _, err := io.CopyN(io.Discard, src, int64(payload)); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, fmt.Errorf("wire: reading drain notice: %w", err)
		}
		return status, nil
	}
	body := make([]byte, int(payload))
	if _, err := io.ReadFull(src, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, fmt.Errorf("wire: reading volume payload: %w", err)
	}
	if _, err := dst.Write(raw[:]); err != nil {
		return 0, fmt.Errorf("wire: relaying volume header: %w", err)
	}
	if _, err := dst.Write(body); err != nil {
		return 0, fmt.Errorf("wire: relaying volume payload: %w", err)
	}
	return status, nil
}
