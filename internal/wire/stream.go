package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// This file defines the two message types the persistent cine stream
// speaks besides frames: the per-connection hello (client → server, one
// query string naming the geometry/session parameters) and the volume
// reply (server → client, one beamformed volume or a typed error).
//
//	hello ("UBS1"): magic(4) + qlen uint16 + query string
//	hello reply:    status uint8 (0 = ok) + mlen uint16 + message
//	volume ("UBV1"): magic(4) + status uint8 + encoding uint8 +
//	    reserved(2, must be 0) + theta/phi/depth uint32×3 +
//	    payload uint64 + payload bytes
//	    status ≠ 0 → the payload is a UTF-8 error message (dims 0)
//	    status = 0 → the payload is theta·phi·depth little-endian
//	    samples in the named encoding (f64 or f32)

// MaxHelloQuery bounds the hello query string (the uint16 length field is
// the hard cap anyway; this just names it).
const MaxHelloQuery = math.MaxUint16

// Volume reply status values. Status 0 means success; everything else
// rides the error payload (a UTF-8 message) back as a *RemoteError, and
// the well-known non-zero values below let clients tell a retryable
// condition from a fatal one without parsing the message.
const (
	// StatusOK: the payload is volume samples.
	StatusOK uint8 = 0
	// StatusError: generic frame failure (bad frame, internal error).
	StatusError uint8 = 1
	// StatusOverloaded: the frame was refused by backpressure; resend it
	// after backing off. The connection stays usable.
	StatusOverloaded uint8 = 2
	// StatusDegraded: the frame was accepted and decoded, then
	// deliberately shed by the server's overload ladder. Resending
	// immediately will likely be shed again.
	StatusDegraded uint8 = 3
	// StatusGoAway: the server is draining; no more frames will be
	// accepted on this connection. Sent in-band at a compound boundary so
	// the client can reconnect elsewhere without losing a frame.
	StatusGoAway uint8 = 4
)

// RemoteError is a non-zero status carried back over a stream or volume
// message — the transport-level analogue of an HTTP error response.
type RemoteError struct {
	Status uint8
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("wire: remote error (status %d): %s", e.Status, e.Msg)
}

// WriteGoAway emits the in-band drain notice: a volume-framed message
// with StatusGoAway. Existing clients (pre-dating the status) see it as a
// remote error and reconnect; aware clients treat it as a clean handoff.
func WriteGoAway(w io.Writer, msg string) error {
	return WriteVolumeError(w, StatusGoAway, msg)
}

// IsGoAway reports whether err is a server drain notice.
func IsGoAway(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Status == StatusGoAway
}

// IsDegraded reports whether err marks a frame shed by the server's
// overload degradation ladder.
func IsDegraded(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Status == StatusDegraded
}

// WriteHello sends the stream handshake: the same query-string parameters
// /beamform accepts (spec, precision, budget, out, theta, phi, ...).
func WriteHello(w io.Writer, query string) error {
	if len(query) > MaxHelloQuery {
		return fmt.Errorf("wire: hello query of %d bytes exceeds %d", len(query), MaxHelloQuery)
	}
	buf := make([]byte, 6+len(query))
	copy(buf, helloMagic)
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(query)))
	copy(buf[6:], query)
	_, err := w.Write(buf)
	return err
}

// ReadHello reads the stream handshake and returns the query string.
func ReadHello(r io.Reader) (string, error) {
	var pre [6]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return "", fmt.Errorf("wire: reading hello: %w", err)
	}
	if string(pre[0:4]) != helloMagic {
		return "", fmt.Errorf("wire: bad hello magic %q", pre[0:4])
	}
	n := binary.LittleEndian.Uint16(pre[4:])
	q := make([]byte, n)
	if _, err := io.ReadFull(r, q); err != nil {
		return "", fmt.Errorf("wire: reading hello query: %w", err)
	}
	return string(q), nil
}

// WriteHelloReply acknowledges (status 0) or rejects (status ≠ 0, with a
// message) a stream handshake.
func WriteHelloReply(w io.Writer, status uint8, msg string) error {
	if len(msg) > math.MaxUint16 {
		msg = msg[:math.MaxUint16]
	}
	buf := make([]byte, 3+len(msg))
	buf[0] = status
	binary.LittleEndian.PutUint16(buf[1:], uint16(len(msg)))
	copy(buf[3:], msg)
	_, err := w.Write(buf)
	return err
}

// ReadHelloReply reads the handshake acknowledgement; a non-zero status
// returns a *RemoteError.
func ReadHelloReply(r io.Reader) error {
	var pre [3]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return fmt.Errorf("wire: reading hello reply: %w", err)
	}
	msg := make([]byte, binary.LittleEndian.Uint16(pre[1:]))
	if _, err := io.ReadFull(r, msg); err != nil {
		return fmt.Errorf("wire: reading hello reply message: %w", err)
	}
	if pre[0] != 0 {
		return &RemoteError{Status: pre[0], Msg: string(msg)}
	}
	return nil
}

// Volume is one decoded volume reply. Data is always float64 regardless of
// the wire encoding (f32 widens exactly); Encoding records what was on the
// wire.
type Volume struct {
	Encoding Encoding
	Theta    int
	Phi      int
	Depth    int
	Data     []float64
}

const volHeaderBytes = 4 + 1 + 1 + 2 + 12 + 8

// WriteVolume emits one volume reply with the samples in the requested
// encoding (EncodingF64 or EncodingF32; i16 volumes are not part of the
// reply contract — the fidelity knob on output is the Precision of the
// session, not a wire quantizer).
func WriteVolume(w io.Writer, enc Encoding, theta, phi, depth int, data []float64) error {
	if enc != EncodingF64 && enc != EncodingF32 {
		return fmt.Errorf("wire: volume encoding %s not supported (want f64|f32)", enc)
	}
	n := theta * phi * depth
	if theta <= 0 || phi <= 0 || depth <= 0 || len(data) != n {
		return fmt.Errorf("wire: %d voxels for a %d×%d×%d volume", len(data), theta, phi, depth)
	}
	size := enc.SampleBytes()
	buf := make([]byte, volHeaderBytes+n*size)
	writeVolumeHeader(buf, 0, enc, theta, phi, depth, uint64(n*size))
	p := buf[volHeaderBytes:]
	if enc == EncodingF32 {
		for i, v := range data {
			binary.LittleEndian.PutUint32(p[4*i:], math.Float32bits(float32(v)))
		}
	} else {
		for i, v := range data {
			binary.LittleEndian.PutUint64(p[8*i:], math.Float64bits(v))
		}
	}
	_, err := w.Write(buf)
	return err
}

// WriteVolume32 is WriteVolume for float32 source samples: f32 replies are
// bit-exact (no widen/narrow round trip), f64 replies widen exactly.
func WriteVolume32(w io.Writer, enc Encoding, theta, phi, depth int, data []float32) error {
	if enc != EncodingF64 && enc != EncodingF32 {
		return fmt.Errorf("wire: volume encoding %s not supported (want f64|f32)", enc)
	}
	n := theta * phi * depth
	if theta <= 0 || phi <= 0 || depth <= 0 || len(data) != n {
		return fmt.Errorf("wire: %d voxels for a %d×%d×%d volume", len(data), theta, phi, depth)
	}
	size := enc.SampleBytes()
	buf := make([]byte, volHeaderBytes+n*size)
	writeVolumeHeader(buf, 0, enc, theta, phi, depth, uint64(n*size))
	p := buf[volHeaderBytes:]
	if enc == EncodingF32 {
		for i, v := range data {
			binary.LittleEndian.PutUint32(p[4*i:], math.Float32bits(v))
		}
	} else {
		for i, v := range data {
			binary.LittleEndian.PutUint64(p[8*i:], math.Float64bits(float64(v)))
		}
	}
	_, err := w.Write(buf)
	return err
}

// WriteVolumeError emits a volume reply carrying an error instead of
// samples; the client's ReadVolume surfaces it as a *RemoteError.
func WriteVolumeError(w io.Writer, status uint8, msg string) error {
	if status == 0 {
		return fmt.Errorf("wire: volume error status must be non-zero")
	}
	if len(msg) > math.MaxUint16 { // plenty for an error string; keeps replies bounded
		msg = msg[:math.MaxUint16]
	}
	buf := make([]byte, volHeaderBytes+len(msg))
	writeVolumeHeader(buf, status, EncodingF64, 0, 0, 0, uint64(len(msg)))
	copy(buf[volHeaderBytes:], msg)
	_, err := w.Write(buf)
	return err
}

func writeVolumeHeader(dst []byte, status uint8, enc Encoding, theta, phi, depth int, payload uint64) {
	copy(dst[0:4], volMagic)
	dst[4] = status
	dst[5] = byte(enc)
	dst[6], dst[7] = 0, 0
	binary.LittleEndian.PutUint32(dst[8:], uint32(theta))
	binary.LittleEndian.PutUint32(dst[12:], uint32(phi))
	binary.LittleEndian.PutUint32(dst[16:], uint32(depth))
	binary.LittleEndian.PutUint64(dst[20:], payload)
}

// ReadVolume reads one volume reply. A non-zero status returns
// (*RemoteError); maxPayload caps the accepted payload (≤0 = 1 GiB).
func ReadVolume(r io.Reader, maxPayload int64) (*Volume, error) {
	var raw [volHeaderBytes]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return nil, fmt.Errorf("wire: reading volume header: %w", err)
	}
	if string(raw[0:4]) != volMagic {
		return nil, fmt.Errorf("wire: bad volume magic %q", raw[0:4])
	}
	if raw[6] != 0 || raw[7] != 0 {
		return nil, fmt.Errorf("wire: reserved volume bytes not 0")
	}
	status := raw[4]
	enc := Encoding(raw[5])
	theta := int(binary.LittleEndian.Uint32(raw[8:]))
	phi := int(binary.LittleEndian.Uint32(raw[12:]))
	depth := int(binary.LittleEndian.Uint32(raw[16:]))
	payload := binary.LittleEndian.Uint64(raw[20:])
	if maxPayload <= 0 {
		maxPayload = 1 << 30
	}
	if payload > uint64(maxPayload) {
		return nil, fmt.Errorf("wire: volume payload %d bytes exceeds cap %d", payload, maxPayload)
	}
	if status != 0 {
		msg := make([]byte, payload)
		if _, err := io.ReadFull(r, msg); err != nil {
			return nil, fmt.Errorf("wire: reading volume error: %w", err)
		}
		return nil, &RemoteError{Status: status, Msg: string(msg)}
	}
	if enc != EncodingF64 && enc != EncodingF32 {
		return nil, fmt.Errorf("wire: volume encoding %s not supported", enc)
	}
	n := theta * phi * depth
	if theta <= 0 || phi <= 0 || depth <= 0 || uint64(n)*uint64(enc.SampleBytes()) != payload {
		return nil, fmt.Errorf("wire: volume payload %d bytes for %d×%d×%d %s voxels", payload, theta, phi, depth, enc)
	}
	raw2 := make([]byte, payload)
	if _, err := io.ReadFull(r, raw2); err != nil {
		return nil, fmt.Errorf("wire: reading volume payload: %w", err)
	}
	v := &Volume{Encoding: enc, Theta: theta, Phi: phi, Depth: depth, Data: make([]float64, n)}
	if enc == EncodingF32 {
		for i := range v.Data {
			v.Data[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw2[4*i:])))
		}
	} else {
		for i := range v.Data {
			v.Data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw2[8*i:]))
		}
	}
	return v, nil
}
