package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"strings"
	"testing"
)

// testSamples builds a deterministic echo-like signal with a wide dynamic
// range — the shape the quantizer has to survive.
func testSamples(n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.75 * math.Sin(float64(i)*0.37) * math.Exp(-float64(i%97)/40)
	}
	return s
}

func header(enc Encoding, elems, win int, scale float32) Header {
	return Header{Encoding: enc, Elements: elems, Window: win, TxCount: 1, Scale: scale}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{Encoding: EncodingI16, Lane: 1, Elements: 144, Window: 8512, TxIndex: 2, TxCount: 5, Scale: 0.0125}
	var raw [HeaderBytes]byte
	h.marshal(raw[:])
	got, err := ReadHeader(bytes.NewReader(raw[:]))
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if got != h {
		t.Fatalf("header round trip: got %+v want %+v", got, h)
	}
}

func TestFrameRoundTripAllEncodings(t *testing.T) {
	const elems, win = 7, 53
	src := testSamples(elems * win)

	for _, chunk := range []int{0, 64, 1 << 20} {
		t.Run("f64", func(t *testing.T) {
			f := &Frame{Header: header(EncodingF64, elems, win, 0), F64: append([]float64(nil), src...)}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, f, chunk); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			if got, want := int64(buf.Len()), FrameWireBytes(f.Header, chunk); got != want {
				t.Fatalf("wire bytes = %d, FrameWireBytes = %d", got, want)
			}
			rt, err := ReadFrame(bytes.NewReader(buf.Bytes()), 0)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			for i, v := range rt.F64 {
				if math.Float64bits(v) != math.Float64bits(src[i]) {
					t.Fatalf("f64 sample %d: %v != %v (not bit-exact)", i, v, src[i])
				}
			}
		})
		t.Run("f32", func(t *testing.T) {
			f32 := make([]float32, len(src))
			for i, v := range src {
				f32[i] = float32(v)
			}
			f := &Frame{Header: header(EncodingF32, elems, win, 0), F32: f32}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, f, chunk); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			rt, err := ReadFrame(bytes.NewReader(buf.Bytes()), 0)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			for i, v := range rt.F32 {
				if math.Float32bits(v) != math.Float32bits(f32[i]) {
					t.Fatalf("f32 sample %d: %v != %v (not bit-exact)", i, v, f32[i])
				}
			}
		})
		t.Run("i16", func(t *testing.T) {
			q, scale := QuantizeI16(src)
			f := &Frame{Header: header(EncodingI16, elems, win, scale), I16: q}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, f, chunk); err != nil {
				t.Fatalf("WriteFrame: %v", err)
			}
			rt, err := ReadFrame(bytes.NewReader(buf.Bytes()), 0)
			if err != nil {
				t.Fatalf("ReadFrame: %v", err)
			}
			if rt.Scale != scale {
				t.Fatalf("scale %v != %v", rt.Scale, scale)
			}
			for i, v := range rt.I16 {
				if v != q[i] {
					t.Fatalf("i16 sample %d: %d != %d", i, v, q[i])
				}
			}
		})
	}
}

func TestQuantizeI16(t *testing.T) {
	t.Run("saturation_and_nonfinite", func(t *testing.T) {
		src := []float64{0, 1, -1, 0.5, math.Inf(1), math.Inf(-1), math.NaN()}
		q, scale := QuantizeI16(src)
		if scale != float32(1.0/32767) {
			t.Fatalf("scale = %v, want %v", scale, float32(1.0/32767))
		}
		want := []int16{0, 32767, -32767, 16384, 32767, -32767, 0}
		for i, v := range q {
			if v != want[i] {
				t.Fatalf("q[%d] = %d, want %d (src %v)", i, v, want[i], src[i])
			}
		}
	})
	t.Run("all_zero", func(t *testing.T) {
		q, scale := QuantizeI16(make([]float64, 4))
		if scale != 1 {
			t.Fatalf("all-zero scale = %v, want 1", scale)
		}
		for _, v := range q {
			if v != 0 {
				t.Fatalf("all-zero frame quantized to %v", q)
			}
		}
	})
	t.Run("snr", func(t *testing.T) {
		src := testSamples(4096)
		q, scale := QuantizeI16(src)
		var sig, noise float64
		for i, v := range src {
			d := v - float64(q[i])*float64(scale)
			sig += v * v
			noise += d * d
		}
		snr := 10 * math.Log10(sig/noise)
		if snr < 60 {
			t.Fatalf("i16 quantization SNR = %.1f dB, want ≥ 60", snr)
		}
	})
}

func TestDecodePlane(t *testing.T) {
	const elems, win, stride = 5, 37, 38
	src := testSamples(elems * win)

	for _, enc := range []Encoding{EncodingF64, EncodingF32, EncodingI16} {
		t.Run(enc.String(), func(t *testing.T) {
			f := &Frame{Header: header(enc, elems, win, 0)}
			switch enc {
			case EncodingF64:
				f.F64 = src
			case EncodingF32:
				f.F32 = make([]float32, len(src))
				for i, v := range src {
					f.F32[i] = float32(v)
				}
			case EncodingI16:
				f.I16, f.Scale = QuantizeI16(src)
			}
			var buf bytes.Buffer
			if err := WriteFrame(&buf, f, 96); err != nil { // force many small chunks
				t.Fatalf("WriteFrame: %v", err)
			}
			h, err := ReadHeader(&buf)
			if err != nil {
				t.Fatalf("ReadHeader: %v", err)
			}
			plane := make([]float32, elems*stride)
			for i := range plane {
				plane[i] = -999 // poison: guard slots must stay untouched... by decode
			}
			if err := DecodePlane(&buf, h, plane, stride); err != nil {
				t.Fatalf("DecodePlane: %v", err)
			}
			for d := 0; d < elems; d++ {
				for j := 0; j < win; j++ {
					var want float32
					switch enc {
					case EncodingF64:
						want = float32(src[d*win+j])
					case EncodingF32:
						want = float32(src[d*win+j])
					case EncodingI16:
						want = float32(f.I16[d*win+j]) * f.Scale
					}
					if got := plane[d*stride+j]; math.Float32bits(got) != math.Float32bits(want) {
						t.Fatalf("%s plane[%d,%d] = %v, want %v", enc, d, j, got, want)
					}
				}
				if plane[d*stride+win] != -999 {
					t.Fatalf("guard slot of element %d overwritten: %v", d, plane[d*stride+win])
				}
			}
		})
	}
}

func TestDecodeF64MatchesSource(t *testing.T) {
	const elems, win = 4, 61
	src := testSamples(elems * win)
	f := &Frame{Header: header(EncodingF64, elems, win, 0), F64: src}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f, 128); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	h, err := ReadHeader(&buf)
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	dst := make([]float64, elems*win)
	if err := DecodeF64(&buf, h, dst); err != nil {
		t.Fatalf("DecodeF64: %v", err)
	}
	for i, v := range dst {
		if math.Float64bits(v) != math.Float64bits(src[i]) {
			t.Fatalf("sample %d not bit-exact: %v != %v", i, v, src[i])
		}
	}
}

func TestDecodePlaneRejectsBadGeometry(t *testing.T) {
	h := header(EncodingF32, 4, 16, 0)
	if err := DecodePlane(strings.NewReader(""), h, make([]float32, 4*16), 16); err == nil {
		t.Fatal("stride == window (no guard slot) accepted")
	}
	if err := DecodePlane(strings.NewReader(""), h, make([]float32, 10), 17); err == nil {
		t.Fatal("short plane accepted")
	}
}

func TestReadHeaderRejectsMalformed(t *testing.T) {
	valid := func() []byte {
		var raw [HeaderBytes]byte
		header(EncodingF32, 8, 64, 0).marshal(raw[:])
		return raw[:]
	}
	cases := []struct {
		name    string
		mutate  func([]byte)
		errPart string
	}{
		{"magic", func(b []byte) { b[0] = 'X' }, "magic"},
		{"version", func(b []byte) { b[4] = 9 }, "version"},
		{"encoding", func(b []byte) { b[5] = 7 }, "encoding"},
		{"flags", func(b []byte) { b[7] = 1 }, "flag"},
		{"zero_elements", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 0) }, "elements"},
		{"huge_elements", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], MaxElements+1) }, "elements"},
		{"zero_window", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) }, "window"},
		{"huge_window", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], MaxWindow+1) }, "window"},
		{"tx_index", func(b []byte) { binary.LittleEndian.PutUint16(b[16:], 3) }, "transmit"},
		{"zero_txcount", func(b []byte) { binary.LittleEndian.PutUint16(b[18:], 0) }, "transmit"},
		{"f32_scale", func(b []byte) { binary.LittleEndian.PutUint32(b[20:], math.Float32bits(2)) }, "scale"},
		{"payload_mismatch", func(b []byte) { binary.LittleEndian.PutUint64(b[24:], 12345) }, "payload"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			raw := valid()
			tc.mutate(raw)
			_, err := ReadHeader(bytes.NewReader(raw))
			if err == nil {
				t.Fatal("malformed header accepted")
			}
			if !strings.Contains(err.Error(), tc.errPart) {
				t.Fatalf("error %q does not mention %q", err, tc.errPart)
			}
		})
	}
	t.Run("i16_needs_scale", func(t *testing.T) {
		var raw [HeaderBytes]byte
		h := header(EncodingI16, 8, 64, 0) // scale 0 is invalid for i16
		h.marshal(raw[:])
		if _, err := ReadHeader(bytes.NewReader(raw[:])); err == nil {
			t.Fatal("i16 header with zero scale accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := ReadHeader(bytes.NewReader(valid()[:10])); err == nil {
			t.Fatal("truncated header accepted")
		}
	})
}

func TestChunkFramingRejectsMalformed(t *testing.T) {
	h := header(EncodingF32, 2, 8, 0) // payload 64 bytes
	frame := func(chunks ...[]byte) *bytes.Reader {
		var buf bytes.Buffer
		var raw [HeaderBytes]byte
		h.marshal(raw[:])
		buf.Write(raw[:])
		for _, c := range chunks {
			var pre [4]byte
			binary.LittleEndian.PutUint32(pre[:], uint32(len(c)))
			buf.Write(pre[:])
			buf.Write(c)
		}
		return bytes.NewReader(buf.Bytes())
	}
	t.Run("zero_chunk", func(t *testing.T) {
		r := frame(nil, make([]byte, 64))
		hh, err := ReadHeader(r)
		if err != nil {
			t.Fatalf("ReadHeader: %v", err)
		}
		if err := DecodePlane(r, hh, make([]float32, 2*9), 9); err == nil {
			t.Fatal("zero-length chunk accepted")
		}
	})
	t.Run("overrun_chunk", func(t *testing.T) {
		r := frame(make([]byte, 100))
		hh, err := ReadHeader(r)
		if err != nil {
			t.Fatalf("ReadHeader: %v", err)
		}
		if err := DecodePlane(r, hh, make([]float32, 2*9), 9); err == nil {
			t.Fatal("chunk overrunning the payload accepted")
		}
	})
	t.Run("truncated_payload", func(t *testing.T) {
		r := frame(make([]byte, 32)) // only half the payload, then EOF
		hh, err := ReadHeader(r)
		if err != nil {
			t.Fatalf("ReadHeader: %v", err)
		}
		if err := DecodePlane(r, hh, make([]float32, 2*9), 9); err == nil {
			t.Fatal("truncated payload accepted")
		}
	})
}

func TestVolumeMessageRoundTrip(t *testing.T) {
	data := make([]float64, 3*4*5)
	for i := range data {
		data[i] = float64(i) * 0.25
	}
	for _, enc := range []Encoding{EncodingF64, EncodingF32} {
		t.Run(enc.String(), func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteVolume(&buf, enc, 3, 4, 5, data); err != nil {
				t.Fatalf("WriteVolume: %v", err)
			}
			vol, err := ReadVolume(&buf, 0)
			if err != nil {
				t.Fatalf("ReadVolume: %v", err)
			}
			if vol.Theta != 3 || vol.Phi != 4 || vol.Depth != 5 {
				t.Fatalf("dims = %d×%d×%d", vol.Theta, vol.Phi, vol.Depth)
			}
			for i, v := range vol.Data {
				want := data[i]
				if enc == EncodingF32 {
					want = float64(float32(want))
				}
				if math.Float64bits(v) != math.Float64bits(want) {
					t.Fatalf("%s voxel %d: %v != %v", enc, i, v, want)
				}
			}
		})
	}
	t.Run("error_status", func(t *testing.T) {
		var buf bytes.Buffer
		if err := WriteVolumeError(&buf, 7, "queue full"); err != nil {
			t.Fatalf("WriteVolumeError: %v", err)
		}
		_, err := ReadVolume(&buf, 0)
		if err == nil || !strings.Contains(err.Error(), "queue full") {
			t.Fatalf("error status round trip: %v", err)
		}
		var re *RemoteError
		if !asRemoteError(err, &re) || re.Status != 7 {
			t.Fatalf("want RemoteError status 7, got %v", err)
		}
	})
}

func asRemoteError(err error, target **RemoteError) bool {
	re, ok := err.(*RemoteError)
	if ok {
		*target = re
	}
	return ok
}

func TestHelloRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	q := "spec=b5&precision=float32&out=scanline&theta=12&phi=12"
	if err := WriteHello(&buf, q); err != nil {
		t.Fatalf("WriteHello: %v", err)
	}
	got, err := ReadHello(&buf)
	if err != nil {
		t.Fatalf("ReadHello: %v", err)
	}
	if got != q {
		t.Fatalf("hello query %q != %q", got, q)
	}
	if _, err := ReadHello(strings.NewReader("XXXX\x00\x00")); err == nil {
		t.Fatal("bad hello magic accepted")
	}
}

// TestDecodePlaneI16 pins the ADC-native ingest fast path: an i16 frame
// streams bit-exactly into a guarded int16 plane (near-memcpy — the int16
// words land untouched), guard slots stay untouched, and the scale rides
// in the header unchanged.
func TestDecodePlaneI16(t *testing.T) {
	const elems, win, stride = 5, 37, 38
	src := testSamples(elems * win)
	q, scale := QuantizeI16(src)
	f := &Frame{Header: header(EncodingI16, elems, win, scale), I16: q}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f, 96); err != nil { // force many small chunks
		t.Fatalf("WriteFrame: %v", err)
	}
	h, err := ReadHeader(&buf)
	if err != nil {
		t.Fatalf("ReadHeader: %v", err)
	}
	if h.Scale != scale {
		t.Fatalf("header scale %v != %v", h.Scale, scale)
	}
	plane := make([]int16, elems*stride)
	for i := range plane {
		plane[i] = -999 // poison: guard slots must stay untouched by decode
	}
	if err := DecodePlaneI16(&buf, h, plane, stride); err != nil {
		t.Fatalf("DecodePlaneI16: %v", err)
	}
	for d := 0; d < elems; d++ {
		for j := 0; j < win; j++ {
			if got := plane[d*stride+j]; got != q[d*win+j] {
				t.Fatalf("plane[%d,%d] = %d, want %d (not bit-exact)", d, j, got, q[d*win+j])
			}
		}
		if plane[d*stride+win] != -999 {
			t.Fatalf("guard slot of element %d overwritten: %v", d, plane[d*stride+win])
		}
	}
}

// TestDecodePlaneI16Rejects pins the fast path's refusal surface: only
// EncodingI16 frames qualify, and the guarded-plane geometry checks match
// DecodePlane's.
func TestDecodePlaneI16Rejects(t *testing.T) {
	const elems, win = 4, 16
	for _, enc := range []Encoding{EncodingF32, EncodingF64} {
		h := header(enc, elems, win, 0)
		if err := DecodePlaneI16(strings.NewReader(""), h, make([]int16, elems*(win+1)), win+1); err == nil {
			t.Fatalf("%s frame accepted by the i16-only decoder", enc)
		}
	}
	h := header(EncodingI16, elems, win, 0.01)
	if err := DecodePlaneI16(strings.NewReader(""), h, make([]int16, elems*win), win); err == nil {
		t.Fatal("stride == window (no guard slot) accepted")
	}
	if err := DecodePlaneI16(strings.NewReader(""), h, make([]int16, 10), win+1); err == nil {
		t.Fatal("short plane accepted")
	}
	// Truncated payload: the streaming read must surface the torn frame.
	src := testSamples(elems * win)
	q, scale := QuantizeI16(src)
	f := &Frame{Header: header(EncodingI16, elems, win, scale), I16: q}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()[:HeaderBytes+40]
	rh, err := ReadHeader(bytes.NewReader(raw[:HeaderBytes]))
	if err != nil {
		t.Fatal(err)
	}
	if err := DecodePlaneI16(bytes.NewReader(raw[HeaderBytes:]), rh, make([]int16, elems*(win+1)), win+1); err == nil {
		t.Fatal("truncated i16 payload decoded without error")
	}
}
