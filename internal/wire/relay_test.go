package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// relayFrame writes one frame in enc with a forced chunk size and returns
// its exact wire bytes.
func relayFrame(t *testing.T, enc Encoding, chunkBytes int) []byte {
	t.Helper()
	const elements, window = 4, 300
	samples := make([]float64, elements*window)
	for i := range samples {
		samples[i] = float64(i%97)/96 - 0.5
	}
	f, err := NewFrame(enc, elements, window, 0, 1, samples)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f, chunkBytes); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCopyFrameVerbatim is the relay's bit-identity contract: what leaves
// the proxy is byte for byte what arrived — in particular an i16 frame's
// quantized samples and scale factor cross untouched (a decode/re-encode
// round trip would pick a new scale and change them).
func TestCopyFrameVerbatim(t *testing.T) {
	for _, enc := range []Encoding{EncodingF64, EncodingF32, EncodingI16} {
		for _, chunk := range []int{0, 512, 1000} { // multi-chunk and ragged-tail framings
			orig := relayFrame(t, enc, chunk)
			src := bytes.NewReader(orig)
			h, err := ReadHeader(src)
			if err != nil {
				t.Fatal(err)
			}
			var dst bytes.Buffer
			if err := CopyFrame(&dst, src, h); err != nil {
				t.Fatalf("%s chunk=%d: %v", enc, chunk, err)
			}
			if !bytes.Equal(dst.Bytes(), orig) {
				t.Errorf("%s chunk=%d: relayed frame differs from original (%d vs %d bytes)",
					enc, chunk, dst.Len(), len(orig))
			}
			if src.Len() != 0 {
				t.Errorf("%s chunk=%d: relay left %d bytes unread", enc, chunk, src.Len())
			}
		}
	}
}

func TestCopyFrameMalformed(t *testing.T) {
	orig := relayFrame(t, EncodingI16, 512)

	// A zeroed chunk prefix is malformed, not a short copy.
	bad := append([]byte(nil), orig...)
	bad[HeaderBytes], bad[HeaderBytes+1], bad[HeaderBytes+2], bad[HeaderBytes+3] = 0, 0, 0, 0
	src := bytes.NewReader(bad)
	h, err := ReadHeader(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := CopyFrame(io.Discard, src, h); err == nil {
		t.Error("zero chunk prefix relayed without error")
	}

	// A transfer dying mid-payload surfaces as an unexpected EOF.
	src = bytes.NewReader(orig[:len(orig)-7])
	if h, err = ReadHeader(src); err != nil {
		t.Fatal(err)
	}
	err = CopyFrame(io.Discard, src, h)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("torn frame relayed with %v, want unexpected EOF", err)
	}
}

func TestCopyVolumePassthrough(t *testing.T) {
	data := make([]float64, 2*3*5)
	for i := range data {
		data[i] = float64(i) * 0.25
	}
	var msgs bytes.Buffer
	if err := WriteVolume(&msgs, EncodingF32, 2, 3, 5, data); err != nil {
		t.Fatal(err)
	}
	if err := WriteVolume(&msgs, EncodingF64, 2, 3, 5, data); err != nil {
		t.Fatal(err)
	}
	if err := WriteVolumeError(&msgs, StatusOverloaded, "queue full"); err != nil {
		t.Fatal(err)
	}
	orig := append([]byte(nil), msgs.Bytes()...)

	// Three messages relay in sequence, each verbatim, statuses reported.
	var dst bytes.Buffer
	for i, want := range []uint8{StatusOK, StatusOK, StatusOverloaded} {
		status, err := CopyVolume(&dst, &msgs, 0)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if status != want {
			t.Errorf("message %d: status %d, want %d", i, status, want)
		}
	}
	if !bytes.Equal(dst.Bytes(), orig) {
		t.Error("relayed volume stream differs from original")
	}

	// The forwarded bytes still decode: the overload error comes back as
	// the same RemoteError the backend sent.
	r := bytes.NewReader(dst.Bytes())
	if _, err := ReadVolume(r, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadVolume(r, 0); err != nil {
		t.Fatal(err)
	}
	_, err := ReadVolume(r, 0)
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusOverloaded || re.Msg != "queue full" {
		t.Errorf("relayed error decoded as %v", err)
	}
}

// TestCopyVolumeGoAwayConsumed: a drain notice is hop-by-hop — the relay
// eats it (so the client never sees the backend drain) and keeps the byte
// stream in sync for whatever follows.
func TestCopyVolumeGoAwayConsumed(t *testing.T) {
	var msgs bytes.Buffer
	if err := WriteGoAway(&msgs, "draining: reconnect elsewhere"); err != nil {
		t.Fatal(err)
	}
	data := []float64{1, 2, 3, 4}
	if err := WriteVolume(&msgs, EncodingF64, 1, 1, 4, data); err != nil {
		t.Fatal(err)
	}

	var dst bytes.Buffer
	status, err := CopyVolume(&dst, &msgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if status != StatusGoAway {
		t.Fatalf("status %d, want GOAWAY", status)
	}
	if dst.Len() != 0 {
		t.Errorf("GOAWAY leaked %d bytes toward the client", dst.Len())
	}
	// The stream stayed in sync: the next message relays normally.
	if status, err = CopyVolume(&dst, &msgs, 0); err != nil || status != StatusOK {
		t.Fatalf("message after GOAWAY: status %d, err %v", status, err)
	}
	v, err := ReadVolume(bytes.NewReader(dst.Bytes()), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Data) != 4 || v.Data[3] != 4 {
		t.Errorf("relayed volume decoded wrong: %v", v.Data)
	}
}

// TestCopyVolumeTornSourceWritesNothing: a backend that dies mid-volume
// must not leak a torn volume toward the client — the relay buffers the
// payload, so a short read errors out with dst untouched and the compound
// stays pending for the re-homed leg.
func TestCopyVolumeTornSourceWritesNothing(t *testing.T) {
	var msg bytes.Buffer
	data := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	if err := WriteVolume(&msg, EncodingF64, 2, 2, 2, data); err != nil {
		t.Fatal(err)
	}
	torn := msg.Bytes()[:msg.Len()-5] // connection cut mid-payload

	var dst bytes.Buffer
	if _, err := CopyVolume(&dst, bytes.NewReader(torn), 0); err == nil {
		t.Fatal("torn volume relayed without error")
	}
	if dst.Len() != 0 {
		t.Errorf("torn volume leaked %d bytes toward the client", dst.Len())
	}
}
