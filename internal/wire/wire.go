// Package wire defines the ADC-native binary frame format the serving
// stack moves RF data in. The compute side narrowed long ago — int16 delay
// blocks (PR 3), float32 echo planes, shared residency — while the wire
// still shipped every frame as little-endian float64: 8 bytes per sample
// for data that left a 12–16-bit ADC and lands in a float32 plane the
// moment it arrives. This package closes that gap with a versioned,
// self-describing frame:
//
//	header (32 bytes, little-endian)
//	  0  magic    "UBF1"
//	  4  version  uint8  (1)
//	  5  encoding uint8  (0 = f64, 1 = f32, 2 = i16)
//	  6  lane     uint8  (scheduling hint: 0 interactive, 1 bulk)
//	  7  flags    uint8  (reserved, must be 0)
//	  8  elements uint32 (receive elements, ej·NX+ei row order)
//	 12  window   uint32 (echo samples per element)
//	 16  txindex  uint16 (this frame's transmit within the compound set)
//	 18  txcount  uint16 (compound set size; 1 = plain frame)
//	 20  scale    float32 (i16 dequantization: sample = int16·scale;
//	                       must be 0 for f32/f64)
//	 24  payload  uint64 (elements·window·sample-size bytes)
//	payload: length-prefixed chunks — uint32 n (0 < n ≤ MaxChunk), then n
//	bytes — whose lengths sum exactly to the header's payload size.
//	Samples are element-major (element d's window is contiguous),
//	little-endian.
//
// The three encodings serve three contracts. EncodingF64 is today's
// format bit for bit — the golden wire, kept so served volumes stay
// bit-identical to the float64 POST path. EncodingF32 halves the wire at
// one rounding per sample. EncodingI16 is the ADC-native form: 2 bytes per
// sample plus one per-frame scale factor, 4× narrower than f64, and — like
// the paper's fixed-point delay words — within the fidelity budget the
// PSNR gates already police.
//
// Chunked framing is what makes the format streamable: a decoder consumes
// the payload chunk by chunk as it arrives — DecodePlane converts straight
// into a guarded float32 echo plane, DecodeF64 into float64 buffers — so
// ingest never buffers a whole frame and decode overlaps the transfer.
//
// The volume reply message (WriteVolume/ReadVolume) and the stream
// handshake (WriteHello/ReadHello/...) round out the persistent-connection
// cine transport serve.Server.ServeStream speaks.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"ultrabeam/internal/faultpoint"
)

// Encoding selects the sample representation of a frame payload.
type Encoding uint8

const (
	// EncodingF64 ships little-endian float64 samples — the legacy wire,
	// bit-exact: a served volume from an f64 wire frame is bit-identical
	// to one from the raw float64 POST body.
	EncodingF64 Encoding = 0
	// EncodingF32 ships little-endian float32 samples: half the wire of
	// f64 at one rounding per sample (lossless for samples that began as
	// float32 — which every narrow-datapath echo did).
	EncodingF32 Encoding = 1
	// EncodingI16 ships little-endian int16 samples with a per-frame scale
	// factor: the ADC-native form, a quarter of the f64 wire. Encoders
	// saturate at ±32767 (QuantizeI16); non-finite samples quantize to the
	// saturated extremes (±Inf) or zero (NaN).
	EncodingI16 Encoding = 2
)

func (e Encoding) String() string {
	switch e {
	case EncodingF64:
		return "f64"
	case EncodingF32:
		return "f32"
	case EncodingI16:
		return "i16"
	}
	return fmt.Sprintf("Encoding(%d)", uint8(e))
}

// ParseEncoding parses an encoding name — the parser behind the fmt= /
// -wire flags. "raw" is not a wire encoding (it names the legacy
// headerless POST body) and is rejected here.
func ParseEncoding(name string) (Encoding, error) {
	switch name {
	case "f64", "float64":
		return EncodingF64, nil
	case "f32", "float32":
		return EncodingF32, nil
	case "i16", "int16":
		return EncodingI16, nil
	}
	return EncodingF64, fmt.Errorf("wire: unknown encoding %q (want i16|f32|f64)", name)
}

// SampleBytes returns the wire width of one sample.
func (e Encoding) SampleBytes() int {
	switch e {
	case EncodingF64:
		return 8
	case EncodingF32:
		return 4
	case EncodingI16:
		return 2
	}
	return 0
}

const (
	// Version is the frame-format version this package speaks.
	Version = 1
	// HeaderBytes is the fixed frame-header size.
	HeaderBytes = 32
	// MaxChunk caps one payload chunk: a length prefix beyond it is
	// malformed, not merely large — the cap is what keeps a corrupt prefix
	// from provoking a giant allocation before any payload byte arrives.
	MaxChunk = 1 << 24
	// DefaultChunk is the chunk size WriteFrame emits: large enough that
	// framing overhead vanishes (4 B per 256 KiB), small enough that a
	// decoder makes progress long before the frame completes.
	DefaultChunk = 256 << 10
	// MaxElements and MaxWindow bound the header geometry fields; both are
	// far above any Table I scale and exist so a corrupt header is rejected
	// by shape before its payload size is even computed.
	MaxElements = 1 << 20
	MaxWindow   = 1 << 24

	frameMagic = "UBF1"
	volMagic   = "UBV1"
	helloMagic = "UBS1"

	// ContentType is the HTTP media type of a wire-framed request body.
	ContentType = "application/x-ultrabeam-frame"
)

// Header describes one wire frame.
type Header struct {
	Encoding Encoding
	Lane     uint8   // scheduling hint (serve.Lane numbering)
	Elements int     // receive elements
	Window   int     // echo samples per element
	TxIndex  int     // transmit index within the compound set
	TxCount  int     // compound set size (≥1)
	Scale    float32 // i16 dequantization factor; 0 for f32/f64
}

// PayloadBytes returns the payload size the header implies.
func (h Header) PayloadBytes() int64 {
	return int64(h.Elements) * int64(h.Window) * int64(h.Encoding.SampleBytes())
}

// Samples returns the per-frame sample count.
func (h Header) Samples() int { return h.Elements * h.Window }

// Validate rejects malformed headers — the early-validation contract: a
// reader can refuse a frame after 32 bytes, before any payload arrives.
func (h Header) Validate() error {
	if h.Encoding.SampleBytes() == 0 {
		return fmt.Errorf("wire: unknown encoding %d", h.Encoding)
	}
	if h.Elements <= 0 || h.Elements > MaxElements {
		return fmt.Errorf("wire: %d elements outside (0, %d]", h.Elements, MaxElements)
	}
	if h.Window <= 0 || h.Window > MaxWindow {
		return fmt.Errorf("wire: window %d outside (0, %d]", h.Window, MaxWindow)
	}
	if h.TxCount < 1 || h.TxCount > math.MaxUint16 {
		return fmt.Errorf("wire: transmit count %d outside [1, %d]", h.TxCount, math.MaxUint16)
	}
	if h.TxIndex < 0 || h.TxIndex >= h.TxCount {
		return fmt.Errorf("wire: transmit index %d outside [0, %d)", h.TxIndex, h.TxCount)
	}
	if h.Encoding == EncodingI16 {
		if !(h.Scale > 0) || math.IsInf(float64(h.Scale), 0) {
			return fmt.Errorf("wire: i16 scale %v is not a positive finite factor", h.Scale)
		}
	} else if h.Scale != 0 {
		return fmt.Errorf("wire: scale %v must be 0 for %s frames", h.Scale, h.Encoding)
	}
	return nil
}

// marshal encodes the header into dst (HeaderBytes long).
func (h Header) marshal(dst []byte) {
	copy(dst[0:4], frameMagic)
	dst[4] = Version
	dst[5] = byte(h.Encoding)
	dst[6] = h.Lane
	dst[7] = 0
	binary.LittleEndian.PutUint32(dst[8:], uint32(h.Elements))
	binary.LittleEndian.PutUint32(dst[12:], uint32(h.Window))
	binary.LittleEndian.PutUint16(dst[16:], uint16(h.TxIndex))
	binary.LittleEndian.PutUint16(dst[18:], uint16(h.TxCount))
	binary.LittleEndian.PutUint32(dst[20:], math.Float32bits(h.Scale))
	binary.LittleEndian.PutUint64(dst[24:], uint64(h.PayloadBytes()))
}

// ReadHeader reads and validates one frame header. A malformed magic,
// version, flag byte, geometry, scale or payload size is rejected here —
// before a single payload byte is read.
func ReadHeader(r io.Reader) (Header, error) {
	var raw [HeaderBytes]byte
	if _, err := io.ReadFull(r, raw[:]); err != nil {
		return Header{}, fmt.Errorf("wire: reading frame header: %w", err)
	}
	if string(raw[0:4]) != frameMagic {
		return Header{}, fmt.Errorf("wire: bad frame magic %q", raw[0:4])
	}
	if raw[4] != Version {
		return Header{}, fmt.Errorf("wire: unsupported frame version %d (have %d)", raw[4], Version)
	}
	if raw[7] != 0 {
		return Header{}, fmt.Errorf("wire: reserved flag byte %#x is not 0", raw[7])
	}
	h := Header{
		Encoding: Encoding(raw[5]),
		Lane:     raw[6],
		Elements: int(binary.LittleEndian.Uint32(raw[8:])),
		Window:   int(binary.LittleEndian.Uint32(raw[12:])),
		TxIndex:  int(binary.LittleEndian.Uint16(raw[16:])),
		TxCount:  int(binary.LittleEndian.Uint16(raw[18:])),
		Scale:    math.Float32frombits(binary.LittleEndian.Uint32(raw[20:])),
	}
	if err := h.Validate(); err != nil {
		return Header{}, err
	}
	if got := binary.LittleEndian.Uint64(raw[24:]); got != uint64(h.PayloadBytes()) {
		return Header{}, fmt.Errorf("wire: declared payload %d bytes; %d elements × %d samples × %d B/sample needs %d",
			got, h.Elements, h.Window, h.Encoding.SampleBytes(), h.PayloadBytes())
	}
	return h, nil
}

// chunkReader de-frames the length-prefixed payload chunks of one frame
// into a plain byte stream of exactly h.PayloadBytes() bytes. Chunk
// prefixes of zero, beyond MaxChunk, or overrunning the declared payload
// are malformed.
type chunkReader struct {
	r         io.Reader
	remaining int64 // payload bytes still owed
	chunkLeft int   // bytes left in the current chunk
}

func newChunkReader(r io.Reader, h Header) *chunkReader {
	return &chunkReader{r: r, remaining: h.PayloadBytes()}
}

// decodeFault simulates a transfer dying mid-payload — the torn-frame
// case every ingest path must survive without corrupting a volume. Inert
// unless a faultpoint schedule arms it.
var decodeFault = faultpoint.New("wire.decode")

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.remaining == 0 {
		return 0, io.EOF
	}
	if err := decodeFault.Err(); err != nil {
		return 0, err
	}
	if c.chunkLeft == 0 {
		var pre [4]byte
		if _, err := io.ReadFull(c.r, pre[:]); err != nil {
			return 0, fmt.Errorf("wire: reading chunk prefix: %w", err)
		}
		n := binary.LittleEndian.Uint32(pre[:])
		if n == 0 || n > MaxChunk {
			return 0, fmt.Errorf("wire: chunk length %d outside (0, %d]", n, MaxChunk)
		}
		if int64(n) > c.remaining {
			return 0, fmt.Errorf("wire: chunk of %d bytes overruns the %d payload bytes still expected", n, c.remaining)
		}
		c.chunkLeft = int(n)
	}
	if len(p) > c.chunkLeft {
		p = p[:c.chunkLeft]
	}
	n, err := c.r.Read(p)
	c.chunkLeft -= n
	c.remaining -= int64(n)
	if err == io.EOF && (c.chunkLeft > 0 || c.remaining > 0) {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

// PayloadReader returns a reader of the frame's raw payload bytes,
// de-chunked: exactly h.PayloadBytes() bytes then io.EOF. The streaming
// decoders consume it incrementally; most callers want DecodePlane /
// DecodeF64 instead.
func PayloadReader(r io.Reader, h Header) io.Reader { return newChunkReader(r, h) }

// decodeScratch is the per-call streaming buffer: big enough to amortize
// Read calls, small enough that a decode makes progress chunk by chunk
// instead of buffering a frame.
const decodeScratch = 64 << 10

// DecodePlane streams the frame payload directly into a guarded float32
// echo plane: element d's samples land at plane[d·stride : d·stride+window]
// with the guard slots (positions window..stride-1 of each row) left
// untouched — the layout beamform's narrow kernel gathers from. The decode
// is incremental: samples convert as chunks arrive, no whole-frame buffer
// exists, and there is no float64 intermediate. plane must hold
// h.Elements·stride float32s with stride > h.Window.
func DecodePlane(r io.Reader, h Header, plane []float32, stride int) error {
	if stride <= h.Window {
		return fmt.Errorf("wire: plane stride %d must exceed the %d-sample window (guard slot)", stride, h.Window)
	}
	if need := h.Elements * stride; len(plane) < need {
		return fmt.Errorf("wire: plane of %d float32s for %d elements × stride %d (need %d)", len(plane), h.Elements, stride, need)
	}
	cr := newChunkReader(r, h)
	size := h.Encoding.SampleBytes()
	var scratch [decodeScratch]byte
	for d := 0; d < h.Elements; d++ {
		row := plane[d*stride : d*stride+h.Window]
		for off := 0; off < h.Window; {
			n := (h.Window - off) * size
			if n > len(scratch) {
				n = len(scratch) / size * size
			}
			if _, err := io.ReadFull(cr, scratch[:n]); err != nil {
				return fmt.Errorf("wire: frame payload (element %d): %w", d, err)
			}
			decodeSamples32(row[off:off+n/size], scratch[:n], h)
			off += n / size
		}
	}
	return drainFrame(cr)
}

// DecodePlaneI16 streams an i16 frame payload directly into a guarded
// int16 echo plane — the ADC-native ingest fast path: when the target
// session's kernel is fixed-point (beamform.PrecisionInt16), the upload is
// a near-memcpy — little-endian int16 words off the wire into the plane
// the kernel gathers from, no float conversion anywhere — with the frame's
// quantization scale riding alongside in the header for the caller to
// hand the kernel. Layout as DecodePlane: element d's samples at
// plane[d·stride : d·stride+window], guard slots untouched. Only
// EncodingI16 frames qualify (other encodings carry no scale and would
// need a server-side quantization pass; callers route them through
// DecodePlane or DecodeF64 instead).
func DecodePlaneI16(r io.Reader, h Header, plane []int16, stride int) error {
	if h.Encoding != EncodingI16 {
		return fmt.Errorf("wire: DecodePlaneI16 needs an i16 frame (have %s)", h.Encoding)
	}
	if stride <= h.Window {
		return fmt.Errorf("wire: plane stride %d must exceed the %d-sample window (guard slot)", stride, h.Window)
	}
	if need := h.Elements * stride; len(plane) < need {
		return fmt.Errorf("wire: plane of %d int16s for %d elements × stride %d (need %d)", len(plane), h.Elements, stride, need)
	}
	cr := newChunkReader(r, h)
	var scratch [decodeScratch]byte
	for d := 0; d < h.Elements; d++ {
		row := plane[d*stride : d*stride+h.Window]
		for off := 0; off < h.Window; {
			n := (h.Window - off) * 2
			if n > len(scratch) {
				n = len(scratch)
			}
			if _, err := io.ReadFull(cr, scratch[:n]); err != nil {
				return fmt.Errorf("wire: frame payload (element %d): %w", d, err)
			}
			for i, out := 0, row[off:off+n/2]; i < len(out); i++ {
				out[i] = int16(binary.LittleEndian.Uint16(scratch[2*i:]))
			}
			off += n / 2
		}
	}
	return drainFrame(cr)
}

// decodeSamples32 converts one run of raw payload bytes into float32s.
func decodeSamples32(dst []float32, raw []byte, h Header) {
	switch h.Encoding {
	case EncodingI16:
		s := h.Scale
		for i := range dst {
			dst[i] = float32(int16(binary.LittleEndian.Uint16(raw[2*i:]))) * s
		}
	case EncodingF32:
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	default: // EncodingF64
		for i := range dst {
			dst[i] = float32(math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:])))
		}
	}
}

// DecodeF64 streams the frame payload into contiguous element-major
// float64 samples (element d at dst[d·window : (d+1)·window]) — the
// decode target of sessions whose kernel consumes float64 echoes. For
// EncodingF64 the samples are bit-exact; i16/f32 widen exactly (every
// int16·scale and float32 value is representable in float64). dst must
// hold h.Samples() float64s.
func DecodeF64(r io.Reader, h Header, dst []float64) error {
	if len(dst) < h.Samples() {
		return fmt.Errorf("wire: destination of %d float64s for %d samples", len(dst), h.Samples())
	}
	cr := newChunkReader(r, h)
	size := h.Encoding.SampleBytes()
	var scratch [decodeScratch]byte
	for off := 0; off < h.Samples(); {
		n := (h.Samples() - off) * size
		if n > len(scratch) {
			n = len(scratch) / size * size
		}
		if _, err := io.ReadFull(cr, scratch[:n]); err != nil {
			return fmt.Errorf("wire: frame payload: %w", err)
		}
		out := dst[off : off+n/size]
		switch h.Encoding {
		case EncodingI16:
			s := float64(h.Scale)
			for i := range out {
				out[i] = float64(int16(binary.LittleEndian.Uint16(scratch[2*i:]))) * s
			}
		case EncodingF32:
			for i := range out {
				out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(scratch[4*i:])))
			}
		default:
			for i := range out {
				out[i] = math.Float64frombits(binary.LittleEndian.Uint64(scratch[8*i:]))
			}
		}
		off += n / size
	}
	return drainFrame(cr)
}

// drainFrame confirms the chunk stream ended exactly at the payload size.
func drainFrame(cr *chunkReader) error {
	if cr.remaining != 0 || cr.chunkLeft != 0 {
		return fmt.Errorf("wire: frame payload short by %d bytes", cr.remaining)
	}
	return nil
}

// Frame is an assembled wire frame: the header plus its samples in exactly
// one of the three representations (the one matching Header.Encoding),
// element-major.
type Frame struct {
	Header
	F64 []float64
	F32 []float32
	I16 []int16
}

// NewFrame assembles a frame from float64 echo samples (element-major,
// elements·window long) in the requested encoding: i16 quantizes via
// QuantizeI16 (the scale lands in the header), f32 narrows, f64 aliases
// the samples. This is the client SDK's framing half; WriteFrame puts it
// on the wire.
func NewFrame(enc Encoding, elements, window, txIndex, txCount int, samples []float64) (*Frame, error) {
	if len(samples) != elements*window {
		return nil, fmt.Errorf("wire: %d samples for %d elements × %d window", len(samples), elements, window)
	}
	f := &Frame{Header: Header{
		Encoding: enc, Elements: elements, Window: window,
		TxIndex: txIndex, TxCount: txCount,
	}}
	switch enc {
	case EncodingI16:
		f.I16, f.Scale = QuantizeI16(samples)
	case EncodingF32:
		f.F32 = make([]float32, len(samples))
		for i, v := range samples {
			f.F32[i] = float32(v)
		}
	default:
		f.F64 = samples
	}
	if err := f.Header.Validate(); err != nil {
		return nil, err
	}
	return f, nil
}

// QuantizeI16 builds an i16 frame payload from float64 samples: scale is
// max|v|/32767 so the loudest sample spans the full int16 range, values
// round to the nearest step and saturate at ±32767, +Inf/−Inf saturate,
// NaN quantizes to 0. An all-zero (or all-non-finite) frame gets scale 1.
func QuantizeI16(samples []float64) (q []int16, scale float32) {
	peak := 0.0
	for _, v := range samples {
		if a := math.Abs(v); a > peak && !math.IsInf(v, 0) {
			peak = a
		}
	}
	s := peak / 32767
	if s == 0 || math.IsNaN(s) {
		s = 1
	}
	scale = float32(s)
	inv := 1 / float64(scale) // one divide; the loop multiplies
	q = make([]int16, len(samples))
	for i, v := range samples {
		x := v * inv
		switch {
		case math.IsNaN(x):
			q[i] = 0
		case x >= 32767:
			q[i] = 32767
		case x <= -32767:
			q[i] = -32767
		default:
			// Half-to-even via the 3·2^51 magic constant — bit-identical to
			// math.RoundToEven for |x| < 32767 and much cheaper; see
			// rf.QuantizePlaneI16, whose rounding this must match exactly
			// (plane batches are bit-identical to wire-quantized batches
			// only because the two quantizers agree on every sample).
			q[i] = int16((x + roundI16Magic) - roundI16Magic)
		}
	}
	return q, scale
}

const roundI16Magic = float64(3 << 51)

// WriteFrame emits one frame — header then chunked payload — with
// chunkBytes-sized chunks (≤0 selects DefaultChunk). This is the client
// SDK's encode half; ReadVolume is the decode half of the reply.
func WriteFrame(w io.Writer, f *Frame, chunkBytes int) error {
	if err := f.Header.Validate(); err != nil {
		return err
	}
	var payload []byte
	n := f.Samples()
	switch f.Encoding {
	case EncodingI16:
		if len(f.I16) != n {
			return fmt.Errorf("wire: %d i16 samples for %d elements × %d window", len(f.I16), f.Elements, f.Window)
		}
		payload = make([]byte, 2*n)
		for i, v := range f.I16 {
			binary.LittleEndian.PutUint16(payload[2*i:], uint16(v))
		}
	case EncodingF32:
		if len(f.F32) != n {
			return fmt.Errorf("wire: %d f32 samples for %d elements × %d window", len(f.F32), f.Elements, f.Window)
		}
		payload = make([]byte, 4*n)
		for i, v := range f.F32 {
			binary.LittleEndian.PutUint32(payload[4*i:], math.Float32bits(v))
		}
	default:
		if len(f.F64) != n {
			return fmt.Errorf("wire: %d f64 samples for %d elements × %d window", len(f.F64), f.Elements, f.Window)
		}
		payload = make([]byte, 8*n)
		for i, v := range f.F64 {
			binary.LittleEndian.PutUint64(payload[8*i:], math.Float64bits(v))
		}
	}
	var hdr [HeaderBytes]byte
	f.Header.marshal(hdr[:])
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunk
	}
	if chunkBytes > MaxChunk {
		chunkBytes = MaxChunk
	}
	var pre [4]byte
	for off := 0; off < len(payload); off += chunkBytes {
		end := off + chunkBytes
		if end > len(payload) {
			end = len(payload)
		}
		binary.LittleEndian.PutUint32(pre[:], uint32(end-off))
		if _, err := w.Write(pre[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// FrameWireBytes returns the exact on-the-wire size of a frame written by
// WriteFrame with the given chunk size — the accounting behind the B7
// bytes-per-frame record.
func FrameWireBytes(h Header, chunkBytes int) int64 {
	if chunkBytes <= 0 {
		chunkBytes = DefaultChunk
	}
	if chunkBytes > MaxChunk {
		chunkBytes = MaxChunk
	}
	payload := h.PayloadBytes()
	chunks := (payload + int64(chunkBytes) - 1) / int64(chunkBytes)
	return HeaderBytes + payload + 4*chunks
}

// ReadFrame reads one whole frame (header plus payload) into memory — the
// convenience form for tests, fuzzing and small clients; servers use
// ReadHeader + DecodePlane/DecodeF64 to stream. maxPayload rejects frames
// whose declared payload exceeds it (≤0 means no cap beyond the header
// field bounds).
func ReadFrame(r io.Reader, maxPayload int64) (*Frame, error) {
	h, err := ReadHeader(r)
	if err != nil {
		return nil, err
	}
	if maxPayload > 0 && h.PayloadBytes() > maxPayload {
		return nil, fmt.Errorf("wire: frame payload %d bytes exceeds cap %d", h.PayloadBytes(), maxPayload)
	}
	f := &Frame{Header: h}
	cr := newChunkReader(r, h)
	raw := make([]byte, h.PayloadBytes())
	if _, err := io.ReadFull(cr, raw); err != nil {
		return nil, fmt.Errorf("wire: frame payload: %w", err)
	}
	n := h.Samples()
	switch h.Encoding {
	case EncodingI16:
		f.I16 = make([]int16, n)
		for i := range f.I16 {
			f.I16[i] = int16(binary.LittleEndian.Uint16(raw[2*i:]))
		}
	case EncodingF32:
		f.F32 = make([]float32, n)
		for i := range f.F32 {
			f.F32[i] = math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:]))
		}
	default:
		f.F64 = make([]float64, n)
		for i := range f.F64 {
			f.F64[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
	}
	return f, nil
}
