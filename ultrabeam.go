// Package ultrabeam reproduces "Tackling the Bottleneck of Delay Tables in
// 3D Ultrasound Imaging" (Ibrahim et al., DATE 2015): two delay-generation
// architectures for realtime 3-D receive beamforming — TABLEFREE, which
// computes every delay on the fly with a piecewise-linear square root, and
// TABLESTEER, which steers a compact reference delay table with precomputed
// tilted-plane corrections — together with the substrates they need (exact
// delay law, fixed-point arithmetic, transducer and volume geometry, RF
// echo simulation, delay-and-sum beamforming, BRAM/DRAM streaming, and an
// FPGA resource model that regenerates the paper's Table II).
//
// Start from a SystemSpec:
//
//	spec := ultrabeam.PaperSpec()          // Table I configuration
//	exact := spec.NewExact()               // float64 golden model
//	tf := spec.NewTableFree()              // §IV architecture
//	ts := spec.NewTableSteer(18)           // §V architecture, 18-bit
//	d := ts.DelaySamples(it, ip, id, ei, ej)
//
// Every provider also implements the block-granular BlockProvider
// interface: FillNappe materializes all θ×φ×element delays of one depth
// nappe into a contiguous buffer in a single call, the bulk datapath the
// streaming beamformer and the paper's nappe-order hardware both consume.
//
// Multi-frame imaging goes through a Session — a persistent worker pool
// whose steady-state BeamformInto is allocation-free — optionally fed by a
// budgeted DelayCache that retains filled nappe blocks across frames (the
// §V-B BRAM-as-cache design point in software):
//
//	sess, cache, err := spec.NewCachedSession(ultrabeam.Hann, tf, -1)
//	defer sess.Close()
//	vols, err := sess.BeamformFrames(frames)
//	fmt.Println(cache.Stats()) // hits, misses, resident bytes
//
// Serving is the long-lived form of all of this (see internal/serve and
// cmd/usbeamd): a Pool keys warm Sessions by geometry fingerprint with one
// SharedDelayCache per geometry — N concurrent cine streams of one probe
// pay one delay budget — and a Server beamforms binary RF frames POSTed
// over HTTP, with bounded-queue backpressure (ErrOverloaded → 503) and TTL
// eviction of idle geometries:
//
//	pool := ultrabeam.NewPool(ultrabeam.PoolConfig{MaxSessions: 4, IdleTTL: 5 * time.Minute})
//	defer pool.Close()
//	srv, err := ultrabeam.NewServer(ultrabeam.ServerConfig{Pool: pool})
//	http.ListenAndServe(":8642", srv)
//
// The cmd/ tools regenerate every table and figure; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package ultrabeam

import (
	"ultrabeam/internal/beamform"
	"ultrabeam/internal/core"
	"ultrabeam/internal/delay"
	"ultrabeam/internal/delaycache"
	"ultrabeam/internal/memmodel"
	"ultrabeam/internal/rf"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/serve"
	"ultrabeam/internal/xdcr"
)

// SystemSpec is the Table I system description; see core.SystemSpec.
type SystemSpec = core.SystemSpec

// Provider generates two-way beamforming delays in sample units.
type Provider = delay.Provider

// BlockProvider generates delays one depth nappe at a time into a
// caller-owned contiguous buffer; see delay.BlockProvider.
type BlockProvider = delay.BlockProvider

// BlockProvider16 additionally fills quantized int16 delay blocks natively;
// see delay.BlockProvider16. Every provider in this module implements it.
type BlockProvider16 = delay.BlockProvider16

// Block16 is a nappe delay block of int16 selection indices — the narrow
// datapath representation, 2 bytes per delay, exact for echo windows within
// MaxEchoWindow samples; see delay.Block16.
type Block16 = delay.Block16

// MaxEchoWindow is the largest echo-buffer length for which int16 selection
// indices are exact; see delay.MaxEchoWindow.
const MaxEchoWindow = delay.MaxEchoWindow

// Layout describes the stride order of a nappe delay block.
type Layout = delay.Layout

// ScalarAdapter lifts a scalar Provider onto the block interface.
type ScalarAdapter = delay.ScalarAdapter

// Converter maps between seconds, meters and echo-sample units.
type Converter = delay.Converter

// Engine is the single-frame delay-and-sum beamformer; see beamform.Engine.
type Engine = beamform.Engine

// Volume is a beamformed output volume; see beamform.Volume.
type Volume = beamform.Volume

// Session is a persistent multi-frame beamformer: worker pool and nappe
// buffers live across frames, BeamformInto is allocation-free in steady
// state, and a caching provider amortizes delay generation across the cine
// sequence. Build one with SystemSpec.NewSession / NewCachedSession, or
// with SessionConfig.Transmits set for multi-transmit compounding
// (BeamformCompound sums N insonifications coherently, bit-identical to
// the sequential per-transmit sum on the float64 path).
type Session = beamform.Session

// Transmit describes one insonification of the volume: the emission
// reference O of the transmit leg. The zero value emits from the array
// center; see delay.Transmit.
type Transmit = delay.Transmit

// TransmitProvider is implemented by delay providers that can derive a
// variant of themselves for another transmit; every provider in this module
// implements it (TABLESTEER requires on-axis origins).
type TransmitProvider = delay.TransmitProvider

// SteeredTransmits returns n diverging-wave insonifications from virtual
// sources behind the aperture, laterally spread along x; see
// delay.SteeredTransmits.
func SteeredTransmits(n int, depthBehind, span float64) []Transmit {
	return delay.SteeredTransmits(n, depthBehind, span)
}

// AxialTransmits returns n on-axis virtual-source insonifications —
// representable by every architecture including TABLESTEER; see
// delay.AxialTransmits.
func AxialTransmits(n int, zmin, zmax float64) []Transmit {
	return delay.AxialTransmits(n, zmin, zmax)
}

// DelayCache retains filled nappe delay blocks across frames under a byte
// budget — the §V-B "on-FPGA table as a cache" design point in software.
// Since PR 5 a DelayCache is one consumer's attachment to a
// SharedDelayCache block store (a private store when built through
// NewCachedSession).
type DelayCache = delaycache.Cache

// SharedDelayCache is the geometry-keyed block store any number of
// concurrent Sessions can attach to: the delay working set belongs to the
// geometry, not the connection. Build one with SystemSpec.NewSharedCache
// and hand sessions SessionConfig.SharedCache; see delaycache.Shared.
type SharedDelayCache = delaycache.Shared

// CacheStats snapshots delay-cache effectiveness (hits, misses, residency,
// attachments, evictions).
type CacheStats = delaycache.Stats

// EchoBuffer holds one element's sampled receive signal; see rf.EchoBuffer.
type EchoBuffer = rf.EchoBuffer

// EchoBuffer32 is the float32 narrow-datapath echo buffer; see
// rf.EchoBuffer32.
type EchoBuffer32 = rf.EchoBuffer32

// Precision selects the session kernel width; see beamform.Precision.
type Precision = beamform.Precision

// The session datapath precisions: PrecisionFloat64 is the bit-identical
// golden model over int16 delay blocks (the default), PrecisionFloat32 the
// narrow float32 kernel (PSNR-gated), PrecisionWide the pre-narrowing
// float64 A/B baseline, PrecisionInt16 the ADC-native fixed-point kernel
// (int16 echo plane, int32 accumulate, PSNR-gated like float32).
const (
	PrecisionFloat64 = beamform.PrecisionFloat64
	PrecisionFloat32 = beamform.PrecisionFloat32
	PrecisionWide    = beamform.PrecisionWide
	PrecisionInt16   = beamform.PrecisionInt16
)

// SessionConfig selects the datapath of a session built by
// SystemSpec.NewSessionConfig; see core.SessionConfig.
type SessionConfig = core.SessionConfig

// Window selects the receive apodization; see xdcr.Window.
type Window = xdcr.Window

// Rect and Hann are the built-in apodization windows.
const (
	Rect = xdcr.Rect
	Hann = xdcr.Hann
)

// Order selects the Algorithm 1 sweep order; see scan.Order.
type Order = scan.Order

// ScanlineOrder and NappeOrder are the two Algorithm 1 sweep flavours.
const (
	ScanlineOrder = scan.ScanlineOrder
	NappeOrder    = scan.NappeOrder
)

// BankArray models a BRAM bank set; see memmodel.BankArray. Feed it to
// BudgetFromBanks to derive a delay-cache budget from the paper's on-chip
// capacity.
type BankArray = memmodel.BankArray

// BudgetFromBanks translates BRAM capacity into a delay-cache byte budget
// holding the same number of resident delay words.
func BudgetFromBanks(a BankArray) int64 { return delaycache.BudgetFromBanks(a) }

// Pool keys warm Sessions by geometry/config fingerprint, sharing one
// SharedDelayCache per geometry, with bounded-queue backpressure and TTL
// eviction of idle geometries; see serve.Pool.
type Pool = serve.Pool

// PoolConfig sizes a Pool (session cap, queue bound, idle TTL).
type PoolConfig = serve.PoolConfig

// PoolStats snapshots pool occupancy and per-geometry cache hit rates.
type PoolStats = serve.PoolStats

// Lease is one checked-out pool session; Release it when the frame is done.
type Lease = serve.Lease

// SessionRequest is the pool key: geometry spec, session config and delay
// architecture. Equal fingerprints share warm sessions and delay storage.
type SessionRequest = serve.SessionRequest

// Server beamforms binary RF frames POSTed over HTTP through a Pool; see
// serve.Server for the wire protocol (/beamform, /healthz, /stats).
type Server = serve.Server

// ServerConfig assembles a Server over a Pool.
type ServerConfig = serve.ServerConfig

// Arch names a delay-generation architecture for serving requests.
type Arch = serve.Arch

// The serving delay architectures.
const (
	ArchTableFree  = serve.ArchTableFree
	ArchTableSteer = serve.ArchTableSteer
	ArchExact      = serve.ArchExact
)

// ErrOverloaded is the pool's typed backpressure signal (HTTP 503).
var ErrOverloaded = serve.ErrOverloaded

// NewPool builds a session pool; see serve.NewPool.
func NewPool(cfg PoolConfig) *Pool { return serve.NewPool(cfg) }

// NewServer wires the HTTP serving frontend over a pool; see
// serve.NewServer.
func NewServer(cfg ServerConfig) (*Server, error) { return serve.NewServer(cfg) }

// PaperSpec returns the exact Table I configuration of the paper.
func PaperSpec() SystemSpec { return core.PaperSpec() }

// ReducedSpec returns a laptop-scale configuration with identical physics.
func ReducedSpec() SystemSpec { return core.ReducedSpec() }
