// Package ultrabeam reproduces "Tackling the Bottleneck of Delay Tables in
// 3D Ultrasound Imaging" (Ibrahim et al., DATE 2015): two delay-generation
// architectures for realtime 3-D receive beamforming — TABLEFREE, which
// computes every delay on the fly with a piecewise-linear square root, and
// TABLESTEER, which steers a compact reference delay table with precomputed
// tilted-plane corrections — together with the substrates they need (exact
// delay law, fixed-point arithmetic, transducer and volume geometry, RF
// echo simulation, delay-and-sum beamforming, BRAM/DRAM streaming, and an
// FPGA resource model that regenerates the paper's Table II).
//
// Start from a SystemSpec:
//
//	spec := ultrabeam.PaperSpec()          // Table I configuration
//	exact := spec.NewExact()               // float64 golden model
//	tf := spec.NewTableFree()              // §IV architecture
//	ts := spec.NewTableSteer(18)           // §V architecture, 18-bit
//	d := ts.DelaySamples(it, ip, id, ei, ej)
//
// Every provider also implements the block-granular BlockProvider
// interface: FillNappe materializes all θ×φ×element delays of one depth
// nappe into a contiguous buffer in a single call, the bulk datapath the
// streaming beamformer and the paper's nappe-order hardware both consume.
//
// The cmd/ tools regenerate every table and figure; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured results.
package ultrabeam

import (
	"ultrabeam/internal/core"
	"ultrabeam/internal/delay"
)

// SystemSpec is the Table I system description; see core.SystemSpec.
type SystemSpec = core.SystemSpec

// Provider generates two-way beamforming delays in sample units.
type Provider = delay.Provider

// BlockProvider generates delays one depth nappe at a time into a
// caller-owned contiguous buffer; see delay.BlockProvider.
type BlockProvider = delay.BlockProvider

// Layout describes the stride order of a nappe delay block.
type Layout = delay.Layout

// ScalarAdapter lifts a scalar Provider onto the block interface.
type ScalarAdapter = delay.ScalarAdapter

// Converter maps between seconds, meters and echo-sample units.
type Converter = delay.Converter

// PaperSpec returns the exact Table I configuration of the paper.
func PaperSpec() SystemSpec { return core.PaperSpec() }

// ReducedSpec returns a laptop-scale configuration with identical physics.
func ReducedSpec() SystemSpec { return core.ReducedSpec() }
