module ultrabeam

go 1.23
