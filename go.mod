module ultrabeam

go 1.24
