// Ablation benchmarks for the design choices DESIGN.md calls out: the
// δ-vs-segment-count trade of the PWL square root, the fixed-point width
// sweep around the paper's 14/18-bit points, the sweep-order cost on the
// TABLEFREE segment tracker, and the circular-buffer sizing margin.
package ultrabeam_test

import (
	"fmt"
	"testing"

	"ultrabeam/internal/core"
	"ultrabeam/internal/fixed"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/sqrtapprox"
	"ultrabeam/internal/tablefree"
	"ultrabeam/internal/tablesteer"
)

// BenchmarkAblationDeltaSegments sweeps the PWL error bound δ and reports
// the segment count and coefficient-storage cost (accuracy/area knob of
// §VI-A: "the average inaccuracy can be arbitrarily reduced with a lower
// δ ... at the cost of increasing LUT area").
func BenchmarkAblationDeltaSegments(b *testing.B) {
	const domain = 4400.0 * 4400.0
	for _, delta := range []float64{1.0, 0.5, 0.25, 0.125, 0.0625} {
		b.Run(fmt.Sprintf("delta=%g", delta), func(b *testing.B) {
			var a *sqrtapprox.Approx
			for i := 0; i < b.N; i++ {
				a = sqrtapprox.New(domain, delta)
			}
			b.ReportMetric(float64(a.NumSegments()), "segments")
			b.ReportMetric(float64(sqrtapprox.NewFixed(a, sqrtapprox.DefaultFixedConfig()).
				LUTBits(24, 19)), "coeff-bits")
		})
	}
}

// BenchmarkAblationFixedWidth sweeps the TABLESTEER word width from 13 to
// 20 bits and reports the expected quantization error added to the 1.4285-
// sample algorithmic mean (the Table II inaccuracy column generalized).
func BenchmarkAblationFixedWidth(b *testing.B) {
	for frac := 0; frac <= 7; frac++ {
		ref := fixed.Format{IntBits: 13, FracBits: frac}
		corr := fixed.Format{IntBits: 13 - min(frac, 4), FracBits: frac, Signed: true}
		b.Run(fmt.Sprintf("bits=%d", ref.Bits()), func(b *testing.B) {
			var e float64
			for i := 0; i < b.N; i++ {
				e = tablesteer.ExpectedAbsQuantError(100_000, ref, corr, 5)
			}
			b.ReportMetric(e, "quant-err-samples")
			b.ReportMetric(1.4285+e, "total-avg-inaccuracy")
		})
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// BenchmarkAblationSweepOrder compares segment-tracker stall cycles for the
// two Algorithm 1 orders on one TABLEFREE unit — the co-design point §II-A
// raises ("different delay calculation architectures may be generating
// values at a faster rate when aimed at a particular order of processing").
func BenchmarkAblationSweepOrder(b *testing.B) {
	spec := core.ReducedSpec()
	p := tablefree.New(tablefree.Config{Vol: spec.Volume(), Arr: spec.Array(),
		Conv: spec.Converter()})
	for _, order := range []scan.Order{scan.NappeOrder, scan.ScanlineOrder} {
		b.Run(order.String(), func(b *testing.B) {
			var res tablefree.SweepResult
			for i := 0; i < b.N; i++ {
				res = p.SimulateSweep(order, spec.ElemX-1, spec.ElemY-1)
			}
			b.ReportMetric(res.StallFraction(), "stalls/point")
			b.ReportMetric(float64(res.MaxJump), "max-jump")
		})
	}
}

// BenchmarkAblationBufferDepth sweeps the circular-buffer size (in BRAM
// banks) and reports the prefetch margin — the §V-B sizing argument.
func BenchmarkAblationBufferDepth(b *testing.B) {
	spec := core.PaperSpec()
	p := spec.NewTableSteer(18)
	for _, banks := range []int{8, 32, 128, 512} {
		b.Run(fmt.Sprintf("banks=%d", banks), func(b *testing.B) {
			arch := tablesteer.PaperArch(18)
			arch.Blocks = banks
			var margin int
			for i := 0; i < b.N; i++ {
				margin = p.Stream(arch, 960).MarginCycles()
			}
			b.ReportMetric(float64(margin), "margin-cycles")
		})
	}
}

// BenchmarkAblationMultiOrigin quantifies the §V synthetic-aperture
// extension: storage versus the number of precalculated origin tables.
func BenchmarkAblationMultiOrigin(b *testing.B) {
	spec := core.ReducedSpec()
	ref, corr := tablesteer.Bits18Config()
	cfg := tablesteer.Config{Vol: spec.Volume(), Arr: spec.Array(),
		Conv: spec.Converter(), RefFmt: ref, CorrFmt: corr}
	for _, n := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("origins=%d", n), func(b *testing.B) {
			origins := make([]float64, n)
			for i := range origins {
				origins[i] = -0.001 * float64(i)
			}
			var m *tablesteer.MultiOrigin
			for i := 0; i < b.N; i++ {
				var err error
				m, err = tablesteer.NewMultiOrigin(cfg, origins)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(m.StorageBits())/1e6, "storage-Mb")
		})
	}
}
