package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"sync"
	"time"

	"ultrabeam/internal/wire"
)

// Frame is one transmit's echo samples, element-major. Send fills the
// compound bookkeeping (transmit index/count) from its argument order.
type Frame struct {
	Elements int
	Window   int
	Samples  []float64
	// Lane optionally overrides the connection's scheduling lane for this
	// compound (0 keeps the connection lane, 1 forces interactive, 2
	// forces bulk) — the per-frame lane byte of the wire header.
	Lane uint8
}

// Volume is one decoded stream reply.
type Volume struct {
	Theta, Phi, Depth int
	Data              []float64
}

// Stream is a persistent cine connection: compounds pushed with Send,
// volumes read in order with Recv. It sequence-tracks what the server has
// answered; a GOAWAY (server drain) or dead connection redials through
// the client's Dial hook with jittered backoff and resends only the
// unanswered compounds, in order — re-homing is invisible to the caller
// beyond latency. One goroutine may Send while another Recvs; neither
// method may itself be called concurrently.
type Stream struct {
	c     *Client
	query string
	enc   wire.Encoding

	mu         sync.Mutex
	conn       net.Conn
	pending    [][]byte // encoded unanswered compounds, oldest first
	attempt    int      // consecutive failed reconnect attempts (progress resets)
	reconnects int
	closed     bool
}

// DialStream opens the cine transport and performs the hello handshake.
// query is the same /v1 parameter set POST accepts; its fmt= selects the
// frame encoding Send uses (default f64 — "raw" is not a stream format).
func (c *Client) DialStream(ctx context.Context, query string) (*Stream, error) {
	enc := wire.EncodingF64
	q, err := url.ParseQuery(query)
	if err != nil {
		return nil, fmt.Errorf("client: stream query: %w", err)
	}
	if f := q.Get("fmt"); f != "" {
		if enc, err = wire.ParseEncoding(f); err != nil {
			return nil, err
		}
	}
	conn, err := DialHello(ctx, c.Dial, c.StreamAddr, query)
	if err != nil {
		return nil, err
	}
	return &Stream{c: c, query: query, enc: enc, conn: conn}, nil
}

// DialHello dials addr (through dial, or TCP when nil) and runs the
// stream handshake: hello out, acknowledgement back. A refused hello
// surfaces the server's reason as a *wire.RemoteError. This is the
// low-level half DialStream builds on; the cluster router uses it
// directly to open backend legs it then relays raw frames over.
func DialHello(ctx context.Context, dial func(context.Context, string) (net.Conn, error), addr, query string) (net.Conn, error) {
	if dial == nil {
		dial = func(ctx context.Context, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	conn, err := dial(ctx, addr)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
		defer conn.SetDeadline(time.Time{})
	}
	if err := wire.WriteHello(conn, query); err != nil {
		conn.Close()
		return nil, err
	}
	if err := wire.ReadHelloReply(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

// Send pushes one compound: frames in transmit order (their count must
// match the query's transmits=). The compound is tracked as pending until
// a reply — or an in-band per-compound error — answers it; a write
// failure here is not fatal, the next Recv repairs the connection and
// resends.
func (s *Stream) Send(frames ...Frame) error {
	if len(frames) == 0 {
		return errors.New("client: empty compound")
	}
	var buf bytes.Buffer
	for i, f := range frames {
		wf, err := wire.NewFrame(s.enc, f.Elements, f.Window, i, len(frames), f.Samples)
		if err != nil {
			return err
		}
		wf.Header.Lane = f.Lane
		if err := wire.WriteFrame(&buf, wf, 0); err != nil {
			return err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("client: stream closed")
	}
	s.pending = append(s.pending, buf.Bytes())
	if s.conn != nil {
		if _, err := s.conn.Write(buf.Bytes()); err != nil {
			// A broken pipe means everything unanswered resends on the
			// next connection; dropping the conn makes Recv rebuild it.
			s.conn.Close()
			s.conn = nil
		}
	}
	return nil
}

// Recv returns the next answer in compound order. A server-side
// per-compound error comes back as *RemoteError — definitive for that
// compound (it will not be resent), connection still healthy. A GOAWAY or
// transport failure re-homes transparently: redial, resend the unanswered
// backlog, keep reading. The retry budget (Client.Retries) bounds
// consecutive reconnect attempts; any answered compound resets it.
func (s *Stream) Recv(ctx context.Context) (*Volume, error) {
	for {
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return nil, errors.New("client: stream closed")
		}
		conn := s.conn
		s.mu.Unlock()
		if conn == nil {
			if err := s.rehome(ctx); err != nil {
				return nil, err
			}
			continue
		}
		if dl, ok := ctx.Deadline(); ok {
			conn.SetReadDeadline(dl)
		}
		v, err := wire.ReadVolume(conn, 0)
		if err == nil {
			s.ackOne()
			return &Volume{Theta: v.Theta, Phi: v.Phi, Depth: v.Depth, Data: v.Data}, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var re *wire.RemoteError
		if errors.As(err, &re) && re.Status != wire.StatusGoAway {
			s.ackOne()
			return nil, &RemoteError{Status: re.Status, Msg: re.Msg}
		}
		if wire.IsGoAway(err) {
			s.c.logf("client: server draining (GOAWAY); re-homing %d pending", s.Pending())
		} else {
			s.c.logf("client: stream read: %v; re-homing %d pending", err, s.Pending())
		}
		s.mu.Lock()
		if s.conn == conn {
			conn.Close()
			s.conn = nil
		}
		s.mu.Unlock()
	}
}

// ackOne records a definitive answer for the oldest pending compound.
func (s *Stream) ackOne() {
	s.mu.Lock()
	if len(s.pending) > 0 {
		s.pending = s.pending[1:]
	}
	s.attempt = 0
	s.mu.Unlock()
}

// rehome rebuilds the connection: backoff, redial + hello, resend every
// pending compound in order. Sends block for the duration (they would
// only race the resend otherwise).
func (s *Stream) rehome(ctx context.Context) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return errors.New("client: stream closed")
		}
		if s.attempt > s.c.retries() {
			return fmt.Errorf("client: stream gave up after %d reconnect attempts with %d compounds unanswered",
				s.attempt, len(s.pending))
		}
		if s.attempt > 0 {
			d := Backoff(s.attempt-1, "")
			s.c.logf("client: stream reconnect %d (%d unanswered) in %v",
				s.reconnects+1, len(s.pending), d.Round(time.Millisecond))
			s.c.sleep(d)
		}
		s.attempt++
		if ctx.Err() != nil {
			return ctx.Err()
		}
		conn, err := DialHello(ctx, s.c.Dial, s.c.StreamAddr, s.query)
		if err != nil {
			s.c.logf("client: stream redial: %v", err)
			continue
		}
		ok := true
		for _, buf := range s.pending {
			if _, err := conn.Write(buf); err != nil {
				conn.Close()
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		s.conn = conn
		s.reconnects++
		return nil
	}
}

// Pending returns how many compounds await an answer.
func (s *Stream) Pending() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.pending)
}

// Reconnects returns how many times the stream re-homed.
func (s *Stream) Reconnects() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reconnects
}

// Close tears the stream down; pending compounds are abandoned.
func (s *Stream) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	if s.conn != nil {
		err := s.conn.Close()
		s.conn = nil
		return err
	}
	return nil
}
