package client

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ultrabeam/internal/wire"
)

// TestPostRetriesHonorRetryAfter: the server's queue-derived hint beats
// the client-side exponential schedule — two 503s with Retry-After: 2
// must produce two waits near 2s (±25% jitter), then the 200 lands.
func TestPostRetriesHonorRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/beamform" {
			t.Errorf("SDK hit %s, want /v1/beamform", r.URL.Path)
		}
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "overloaded", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Ultrabeam-Encoding", "f32")
		var out [8]byte
		binary.LittleEndian.PutUint32(out[0:], math.Float32bits(1.5))
		binary.LittleEndian.PutUint32(out[4:], math.Float32bits(-2))
		w.Write(out[:])
	}))
	defer ts.Close()

	var slept []time.Duration
	c := &Client{
		Addr:  strings.TrimPrefix(ts.URL, "http://"),
		Sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	res, err := c.Post(context.Background(), "spec=reduced", "raw", 1, 2, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 2 || res.Data[0] != 1.5 || res.Data[1] != -2 {
		t.Errorf("decoded %v", res.Data)
	}
	if res.Encoding != "f32" {
		t.Errorf("encoding %q", res.Encoding)
	}
	if len(slept) != 2 {
		t.Fatalf("%d backoff waits, want 2", len(slept))
	}
	for _, d := range slept {
		if d < 1500*time.Millisecond || d > 2500*time.Millisecond {
			t.Errorf("backoff %v outside the Retry-After: 2 jitter window", d)
		}
	}
}

// TestPostErrorsSurfaceRetryAfter: with the retry budget exhausted the
// SDK returns a typed error still carrying the server's hint — what the
// router's passthrough contract (and any batch caller) keys off.
func TestPostErrorsSurfaceRetryAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := &Client{Addr: strings.TrimPrefix(ts.URL, "http://"), Retries: -1}
	_, err := c.Post(context.Background(), "", "raw", 1, 1, []float64{1})
	var he *HTTPError
	if !errors.As(err, &he) {
		t.Fatalf("got %v, want *HTTPError", err)
	}
	if he.StatusCode != http.StatusServiceUnavailable || he.RetryAfter != "7" {
		t.Errorf("HTTPError{%d, RetryAfter:%q}", he.StatusCode, he.RetryAfter)
	}
}

func TestBackoffSchedule(t *testing.T) {
	for attempt, want := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
	} {
		for i := 0; i < 20; i++ {
			d := Backoff(attempt, "")
			if d < time.Duration(float64(want)*0.74) || d > time.Duration(float64(want)*1.26) {
				t.Fatalf("attempt %d: %v outside ±25%% of %v", attempt, d, want)
			}
		}
	}
	if d := Backoff(20, ""); d > time.Duration(5*float64(time.Second)*1.26) {
		t.Errorf("uncapped backoff %v", d)
	}
}

// stubStream serves one cine connection: hello handshake, then n single-
// frame compounds each answered with a volume echoing the frame's first
// sample, then a final action (GOAWAY, an in-band error, or nothing).
func stubStream(t *testing.T, ln net.Listener, answer int, then func(net.Conn)) {
	t.Helper()
	conn, err := ln.Accept()
	if err != nil {
		return
	}
	defer conn.Close()
	if _, err := wire.ReadHello(conn); err != nil {
		t.Errorf("stub hello: %v", err)
		return
	}
	wire.WriteHelloReply(conn, 0, "ok")
	for i := 0; i < answer; i++ {
		f, err := wire.ReadFrame(conn, 0)
		if err != nil {
			t.Errorf("stub frame %d: %v", i, err)
			return
		}
		if err := wire.WriteVolume(conn, wire.EncodingF64, 1, 1, 1, f.F64[:1]); err != nil {
			return
		}
	}
	if then != nil {
		then(conn)
	}
}

// TestStreamRehomeResends is the SDK's sequence-tracking contract: a
// GOAWAY mid-burst reconnects (through the Dial hook) and resends exactly
// the unanswered compounds, in order — nothing is beamformed twice.
func TestStreamRehomeResends(t *testing.T) {
	ln1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln1.Close()
	defer ln2.Close()

	// Server 1 answers one compound then drains; server 2 takes the rest.
	done1 := make(chan struct{})
	go func() {
		defer close(done1)
		stubStream(t, ln1, 1, func(c net.Conn) { wire.WriteGoAway(c, "draining") })
	}()
	done2 := make(chan struct{})
	go func() {
		defer close(done2)
		stubStream(t, ln2, 3, nil)
	}()

	var dials atomic.Int32
	c := &Client{
		StreamAddr: ln1.Addr().String(),
		Sleep:      func(time.Duration) {},
		Dial: func(ctx context.Context, addr string) (net.Conn, error) {
			if dials.Add(1) == 1 {
				return net.Dial("tcp", ln1.Addr().String())
			}
			return net.Dial("tcp", ln2.Addr().String())
		},
	}
	s, err := c.DialStream(context.Background(), "spec=reduced&fmt=f64")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 1; i <= 4; i++ {
		if err := s.Send(Frame{Elements: 1, Window: 1, Samples: []float64{float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 1; i <= 4; i++ {
		v, err := s.Recv(ctx)
		if err != nil {
			t.Fatalf("compound %d: %v", i, err)
		}
		if len(v.Data) != 1 || v.Data[0] != float64(i) {
			t.Errorf("compound %d answered with %v — resend lost order", i, v.Data)
		}
	}
	if s.Pending() != 0 || s.Reconnects() != 1 {
		t.Errorf("pending=%d reconnects=%d, want 0 and 1", s.Pending(), s.Reconnects())
	}
	<-done1
	<-done2
}

// TestStreamInBandErrorDefinitive: a per-compound error answers its
// compound (never resent) and the connection stays usable.
func TestStreamInBandErrorDefinitive(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := wire.ReadHello(conn); err != nil {
			return
		}
		wire.WriteHelloReply(conn, 0, "ok")
		if _, err := wire.ReadFrame(conn, 0); err != nil {
			return
		}
		wire.WriteVolumeError(conn, wire.StatusDegraded, "shed by ladder")
		f, err := wire.ReadFrame(conn, 0)
		if err != nil {
			return
		}
		wire.WriteVolume(conn, wire.EncodingF64, 1, 1, 1, f.F64[:1])
	}()

	c := &Client{StreamAddr: ln.Addr().String(), Sleep: func(time.Duration) {}}
	s, err := c.DialStream(context.Background(), "")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Send(Frame{Elements: 1, Window: 1, Samples: []float64{7}})
	s.Send(Frame{Elements: 1, Window: 1, Samples: []float64{8}})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_, err = s.Recv(ctx)
	var re *RemoteError
	if !errors.As(err, &re) || !re.Degraded() {
		t.Fatalf("got %v, want degraded *RemoteError", err)
	}
	v, err := s.Recv(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Data[0] != 8 {
		t.Errorf("second compound answered with %v", v.Data)
	}
	if s.Reconnects() != 0 {
		t.Errorf("in-band error triggered a reconnect")
	}
	<-done
}

// TestDialHelloRefused: a rejected handshake surfaces the server's reason.
func TestDialHelloRefused(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		wire.ReadHello(conn)
		wire.WriteHelloReply(conn, 1, "stream transport needs scheduled mode")
	}()
	_, err = DialHello(context.Background(), nil, ln.Addr().String(), "spec=reduced")
	if err == nil || !strings.Contains(err.Error(), "scheduled mode") {
		t.Errorf("got %v, want the server's refusal", err)
	}
}
