// Package client is the Go SDK for the ultrabeam serving stack: one
// import that speaks both transports a usbeamd node — or a usbeamrouter
// fronting a cluster of them — accepts. Post runs the HTTP round trip
// (POST /v1/beamform with a legacy raw float64 body or a self-describing
// wire frame); DialStream opens the persistent cine transport (one hello,
// then compounds pushed back to back, volumes read in order).
//
// Resilience is built in, because every server in the stack signals
// overload and drain deliberately: HTTP 503s retry with jittered
// exponential backoff honoring the server's Retry-After hint (derived
// from real queue depth, so it beats any client-side guess), and the
// stream sequence-tracks its compounds — a GOAWAY or dead connection
// redials and resends only the frames the server never answered, so
// nothing is beamformed twice. The example client
// (examples/serveclient), the CI smokes and the cluster router's backend
// legs all ride this package.
package client

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ultrabeam/internal/wire"
)

// DefaultRetries is the retry budget when Client.Retries is 0: dead
// connections and 503s back off and try again this many times.
const DefaultRetries = 5

// Client reaches one serving frontend — a usbeamd node or a usbeamrouter.
// The zero value is not usable; set Addr (and StreamAddr for DialStream).
type Client struct {
	// Addr is the HTTP host:port.
	Addr string
	// StreamAddr is the cine stream TCP host:port (DialStream target).
	StreamAddr string
	// HTTP overrides the HTTP client (nil = http.DefaultClient).
	HTTP *http.Client
	// Retries bounds retry loops (0 = DefaultRetries, negative = none).
	Retries int
	// Dial overrides the stream transport dialer — tests and proxies
	// inject connections here; nil dials TCP.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Logf, when set, receives one line per retry/reconnect decision.
	Logf func(format string, args ...any)
	// Sleep overrides backoff waiting (tests); nil = time.Sleep.
	Sleep func(d time.Duration)
}

func (c *Client) retries() int {
	if c.Retries == 0 {
		return DefaultRetries
	}
	if c.Retries < 0 {
		return 0
	}
	return c.Retries
}

func (c *Client) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

func (c *Client) sleep(d time.Duration) {
	if c.Sleep != nil {
		c.Sleep(d)
		return
	}
	time.Sleep(d)
}

// Backoff picks the delay before retry attempt+1 (attempt counts from 0).
// A Retry-After hint from the server wins — it is derived from actual
// queue depth and drain rate; otherwise exponential from 100ms capped at
// 5s. Both get ±25% jitter so a fleet of clients bounced by one overload
// burst does not reconverge on the server in lockstep.
func Backoff(attempt int, retryAfter string) time.Duration {
	d := 100 * time.Millisecond << uint(min(attempt, 6))
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	if s, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	return time.Duration(float64(d) * (0.75 + rand.Float64()/2))
}

// HTTPError is a non-200, non-retried HTTP response.
type HTTPError struct {
	StatusCode int
	Body       string
	// RetryAfter carries the server's Retry-After header (seconds), if
	// any — on a 503 that exhausted the retry budget it is the server's
	// own estimate of when capacity returns.
	RetryAfter string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.StatusCode, e.Body)
}

// RemoteError is a per-compound in-band answer from the stream transport
// (the wire StatusError/StatusOverloaded/StatusDegraded family). It is
// definitive for its compound — the frame counted as answered and is
// never resent — and the stream stays usable.
type RemoteError struct {
	Status uint8
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("client: remote error (status %d): %s", e.Status, e.Msg)
}

// Overloaded reports whether err is backpressure pushback — the server
// refused the frame before decoding it; resend after backing off.
func (e *RemoteError) Overloaded() bool { return e.Status == wire.StatusOverloaded }

// Degraded reports whether err marks a frame shed by the server's
// overload degradation ladder.
func (e *RemoteError) Degraded() bool { return e.Status == wire.StatusDegraded }

// Result is one decoded HTTP beamform response.
type Result struct {
	// Data is the volume or scanline, widened to float64 whatever the
	// negotiated response encoding.
	Data []float64
	// Encoding is the wire encoding the response arrived in (f64|f32).
	Encoding string
	// Header is the full response header set (X-Ultrabeam-Elapsed-Ms,
	// X-Ultrabeam-Encoding, ...).
	Header http.Header
}

// EncodeBody builds one POST /v1/beamform request body. format "raw"
// selects the legacy headerless little-endian float64 body; "i16", "f32"
// and "f64" build a self-describing wire frame (i16 quantizes
// ADC-natively — pair it with precision=float32 in the query). Returns
// the body and its Content-Type.
func EncodeBody(format string, elements, window int, samples []float64) ([]byte, string, error) {
	if format == "" || format == "raw" {
		if len(samples) != elements*window {
			return nil, "", fmt.Errorf("client: %d samples for %d elements × %d window", len(samples), elements, window)
		}
		body := make([]byte, 8*len(samples))
		for i, v := range samples {
			binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(v))
		}
		return body, "application/octet-stream", nil
	}
	enc, err := wire.ParseEncoding(format)
	if err != nil {
		return nil, "", err
	}
	f, err := wire.NewFrame(enc, elements, window, 0, 1, samples)
	if err != nil {
		return nil, "", err
	}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, f, 0); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), wire.ContentType, nil
}

// Post runs one beamform round trip: one frame of echo samples
// (element-major, elements×window) in, the beamformed volume or scanline
// out. query is the /v1/beamform parameter set ("spec=reduced&
// out=scanline&..."); format picks the body per EncodeBody. Dead
// connections and 503s retry with jittered backoff honoring Retry-After;
// a non-retryable status returns *HTTPError.
func (c *Client) Post(ctx context.Context, query, format string, elements, window int, samples []float64) (*Result, error) {
	body, ct, err := EncodeBody(format, elements, window, samples)
	if err != nil {
		return nil, err
	}
	u := "http://" + c.Addr + "/v1/beamform"
	if query != "" {
		u += "?" + query
	}
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", ct)
		resp, err := c.httpc().Do(req)
		if err != nil {
			if ctx.Err() != nil || attempt >= c.retries() {
				return nil, fmt.Errorf("client: POST %s: %w", u, err)
			}
			d := Backoff(attempt, "")
			c.logf("client: %v; retrying in %v", err, d.Round(time.Millisecond))
			c.sleep(d)
			continue
		}
		raw, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < c.retries() && ctx.Err() == nil {
			d := Backoff(attempt, resp.Header.Get("Retry-After"))
			c.logf("client: 503 %s; retrying in %v", strings.TrimSpace(string(raw)), d.Round(time.Millisecond))
			c.sleep(d)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return nil, &HTTPError{
				StatusCode: resp.StatusCode,
				Body:       strings.TrimSpace(string(raw)),
				RetryAfter: resp.Header.Get("Retry-After"),
			}
		}
		encName := resp.Header.Get("X-Ultrabeam-Encoding")
		data, derr := DecodeSamples(raw, encName)
		if derr != nil {
			return nil, derr
		}
		if encName == "" {
			encName = "f64"
		}
		return &Result{Data: data, Encoding: encName, Header: resp.Header}, nil
	}
}

// DecodeSamples parses a response body in the negotiated encoding ("f32",
// or "f64"/"" — the X-Ultrabeam-Encoding header value), widening to
// float64.
func DecodeSamples(raw []byte, enc string) ([]float64, error) {
	if enc == "f32" {
		if len(raw) == 0 || len(raw)%4 != 0 {
			return nil, fmt.Errorf("client: response is %d bytes, not an f32 sample array", len(raw))
		}
		out := make([]float64, len(raw)/4)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:])))
		}
		return out, nil
	}
	if len(raw) == 0 || len(raw)%8 != 0 {
		return nil, fmt.Errorf("client: response is %d bytes, not a float64 sample array", len(raw))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out, nil
}
