// Block/scalar equivalence at the facade level: for every delay
// architecture of the paper, the nappe-granular FillNappe datapath must be
// bit-identical to the scalar DelaySamples reference — the contract that
// lets the streaming beamformer switch paths freely (ISSUE 1 acceptance
// criterion; see DESIGN.md §5).
package ultrabeam_test

import (
	"testing"

	"ultrabeam/internal/beamform"
	"ultrabeam/internal/core"
	"ultrabeam/internal/delay"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/rf"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

// blockSpec is a small spec exercising odd θ/φ dims and even element axes,
// with depth sampling fine enough that the point phantom stays visible.
func blockSpec() core.SystemSpec {
	s := core.ReducedSpec()
	s.ElemX, s.ElemY = 10, 8
	s.FocalTheta, s.FocalPhi, s.FocalDepth = 9, 7, 64
	s.DepthLambda = 80 // 30.8 mm imaging depth → 0.5 mm depth steps
	return s
}

func TestFillNappeBitIdenticalAllProviders(t *testing.T) {
	s := blockSpec()
	cases := []struct {
		name string
		prov delay.Provider
	}{
		{"exact", s.NewExact()},
		{"tablefree-ideal", s.NewTableFree()},
		{"tablefree-fixed", func() delay.Provider {
			p := s.NewTableFree()
			p.UseFixed = true
			return p
		}()},
		{"tablesteer-float", s.NewTableSteer(18)},
		{"tablesteer-18b", func() delay.Provider {
			p := s.NewTableSteer(18)
			p.UseFixed = true
			return p
		}()},
		{"tablesteer-14b", func() delay.Provider {
			p := s.NewTableSteer(14)
			p.UseFixed = true
			return p
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bp, ok := tc.prov.(delay.BlockProvider)
			if !ok {
				t.Fatalf("%T must implement delay.BlockProvider", tc.prov)
			}
			l := bp.Layout()
			dst := make([]float64, l.BlockLen())
			for id := 0; id < s.FocalDepth; id++ {
				bp.FillNappe(id, dst)
				for it := 0; it < l.NTheta; it++ {
					for ip := 0; ip < l.NPhi; ip++ {
						for ej := 0; ej < l.NY; ej++ {
							for ei := 0; ei < l.NX; ei++ {
								want := tc.prov.DelaySamples(it, ip, id, ei, ej)
								got := dst[l.Index(it, ip, ei, ej)]
								if got != want {
									t.Fatalf("id=%d (%d,%d,%d,%d): block %v != scalar %v",
										id, it, ip, ei, ej, got, want)
								}
							}
						}
					}
				}
			}
		})
	}
}

func TestBeamformBlockPathReproducesScalarPath(t *testing.T) {
	s := blockSpec()
	bufs, err := rf.Synthesize(rf.Config{
		Arr: s.Array(), Conv: s.Converter(), Pulse: rf.NewPulse(s.Fc, s.B),
		BufSamples: s.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.02}))
	if err != nil {
		t.Fatal(err)
	}
	eng := s.NewBeamformer(xdcr.Hann, scan.NappeOrder)
	for _, prov := range []delay.Provider{s.NewExact(), s.NewTableFree(), s.NewTableSteer(18)} {
		scalar, err := eng.BeamformScalar(prov, bufs)
		if err != nil {
			t.Fatal(err)
		}
		block, err := eng.BeamformBlock(prov, bufs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range scalar.Data {
			if scalar.Data[i] != block.Data[i] {
				t.Fatalf("%s: block path diverges from scalar at %d", prov.Name(), i)
			}
		}
		if sim, err := beamform.Similarity(scalar, block); err != nil || sim != 1 {
			t.Fatalf("%s: similarity = %v, %v", prov.Name(), sim, err)
		}
	}
}
