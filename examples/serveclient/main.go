// Serveclient: a minimal client for a running usbeamd. It synthesizes one
// RF frame of a point scatterer on the reduced-scale geometry, POSTs it to
// the daemon as binary little-endian float64 samples, and prints the
// returned scanline through the volume center — the round trip the CI
// server-smoke step asserts on.
//
// Run `go run ./cmd/usbeamd` in one terminal, then:
//
//	go run ./examples/serveclient -addr localhost:8642
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"

	"ultrabeam"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/rf"
)

func main() {
	addr := flag.String("addr", "localhost:8642", "usbeamd address")
	flag.Parse()

	// One frame of the reduced Table I system: a point scatterer at 60%
	// depth, echoes synthesized per element at fs.
	spec := ultrabeam.ReducedSpec()
	bufs, err := rf.Synthesize(rf.Config{
		Arr: spec.Array(), Conv: spec.Converter(), Pulse: rf.NewPulse(spec.Fc, spec.B),
		BufSamples: spec.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.6 * spec.Depth()}))
	if err != nil {
		fail(err)
	}

	// The wire format: element-major little-endian float64, window length
	// inferred by the server from the body size.
	win := len(bufs[0].Samples)
	body := make([]byte, 8*len(bufs)*win)
	for d, b := range bufs {
		for i, v := range b.Samples {
			binary.LittleEndian.PutUint64(body[8*(d*win+i):], math.Float64bits(v))
		}
	}
	url := fmt.Sprintf("http://%s/beamform?spec=reduced&out=scanline", *addr)
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		fail(fmt.Errorf("POST %s: %w (is usbeamd running?)", url, err))
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("%s: %s", resp.Status, raw))
	}
	if len(raw) == 0 || len(raw)%8 != 0 {
		fail(fmt.Errorf("response is %d bytes, not a float64 scanline", len(raw)))
	}

	line := make([]float64, len(raw)/8)
	peak, peakAt := 0.0, 0
	for i := range line {
		line[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		if a := math.Abs(line[i]); a > peak {
			peak, peakAt = a, i
		}
	}
	fmt.Printf("scanline %s through %s, %d depth samples (server elapsed %s ms)\n",
		resp.Header.Get("X-Ultrabeam-Scanline"), spec.String(), len(line),
		resp.Header.Get("X-Ultrabeam-Elapsed-Ms"))
	fmt.Printf("peak |s| = %.4g at depth index %d (scatterer at 60%% depth = index %d)\n",
		peak, peakAt, spec.FocalDepth*60/100)
	// A coarse sparkline of the echo energy down the line of sight.
	const cols = 64
	bins := make([]float64, cols)
	for i, v := range line {
		b := i * cols / len(line)
		if a := math.Abs(v); a > bins[b] {
			bins[b] = a
		}
	}
	marks := []rune(" .:-=+*#%@")
	var spark []rune
	for _, v := range bins {
		i := int(v / peak * float64(len(marks)-1))
		spark = append(spark, marks[i])
	}
	fmt.Printf("|%s|\n", string(spark))
	if peak == 0 {
		fail(fmt.Errorf("returned scanline has no energy"))
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serveclient:", err)
	os.Exit(1)
}
