// Serveclient: a minimal client for a running usbeamd. It synthesizes one
// RF frame of a point scatterer on the reduced-scale geometry, sends it to
// the daemon, and prints the returned scanline through the volume center —
// the round trip the CI server-smoke step asserts on.
//
// The transport is selectable. -wire raw POSTs the legacy headerless
// float64 body; -wire i16|f32|f64 POSTs a self-describing wire frame
// (internal/wire) — i16 is the ADC-native format at roughly a third of the
// f64 bytes. -stream switches from HTTP to the persistent cine transport:
// one TCP connection, the query sent once, then -frames compounds pushed
// back to back with volumes read in order.
//
// Run `go run ./cmd/usbeamd -stream-addr :8643` in one terminal, then:
//
//	go run ./examples/serveclient -addr localhost:8642 -wire i16
//	go run ./examples/serveclient -stream localhost:8643 -wire i16 -frames 8
package main

import (
	"bytes"
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"

	"ultrabeam"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/rf"
	"ultrabeam/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:8642", "usbeamd HTTP address")
	wireFmt := flag.String("wire", "raw", "request format: raw (legacy float64 body) or i16|f32|f64 wire frames")
	respFmt := flag.String("resp", "f64", "response sample encoding: f64|f32")
	stream := flag.String("stream", "", "use the persistent cine stream transport at this TCP address instead of HTTP")
	frames := flag.Int("frames", 4, "compounds to push over the stream transport")
	flag.Parse()

	// One frame of the reduced Table I system: a point scatterer at 60%
	// depth, echoes synthesized per element at fs.
	spec := ultrabeam.ReducedSpec()
	bufs, err := rf.Synthesize(rf.Config{
		Arr: spec.Array(), Conv: spec.Converter(), Pulse: rf.NewPulse(spec.Fc, spec.B),
		BufSamples: spec.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.6 * spec.Depth()}))
	if err != nil {
		fail(err)
	}
	win := len(bufs[0].Samples)
	samples := make([]float64, len(bufs)*win) // element-major
	for d, b := range bufs {
		copy(samples[d*win:], b.Samples)
	}

	query := "spec=reduced&out=scanline&resp=" + *respFmt
	var enc wire.Encoding
	isWire := *wireFmt != "raw"
	if isWire {
		if enc, err = wire.ParseEncoding(*wireFmt); err != nil {
			fail(err)
		}
		query += "&fmt=" + enc.String()
		if enc != wire.EncodingF64 {
			// The narrowed encodings pair with the float32 session: the
			// server decodes them straight into its float32 echo planes.
			query += "&precision=float32"
		}
	}

	var line []float64
	var note string
	if *stream != "" {
		if !isWire {
			fail(fmt.Errorf("the stream transport carries wire frames: pick -wire i16|f32|f64"))
		}
		line, note = runStream(*stream, query, enc, spec.Elements(), win, samples, *frames)
	} else if isWire {
		line, note = postWire(*addr, query, enc, spec.Elements(), win, samples)
	} else {
		line, note = postRaw(*addr, query, samples)
	}

	peak, peakAt := 0.0, 0
	for i, v := range line {
		if a := math.Abs(v); a > peak {
			peak, peakAt = a, i
		}
	}
	fmt.Printf("scanline through %s, %d depth samples (%s)\n", spec.String(), len(line), note)
	fmt.Printf("peak |s| = %.4g at depth index %d (scatterer at 60%% depth = index %d)\n",
		peak, peakAt, spec.FocalDepth*60/100)
	// A coarse sparkline of the echo energy down the line of sight.
	const cols = 64
	bins := make([]float64, cols)
	for i, v := range line {
		b := i * cols / len(line)
		if a := math.Abs(v); a > bins[b] {
			bins[b] = a
		}
	}
	marks := []rune(" .:-=+*#%@")
	var spark []rune
	for _, v := range bins {
		i := int(v / peak * float64(len(marks)-1))
		spark = append(spark, marks[i])
	}
	fmt.Printf("|%s|\n", string(spark))
	if peak == 0 {
		fail(fmt.Errorf("returned scanline has no energy"))
	}
}

// postRaw POSTs the legacy headerless float64 body.
func postRaw(addr, query string, samples []float64) ([]float64, string) {
	body := make([]byte, 8*len(samples))
	for i, v := range samples {
		binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(v))
	}
	return post(addr, query, "application/octet-stream", body, fmt.Sprintf("raw f64 body, %d B", len(body)))
}

// postWire POSTs one wire frame in the chosen encoding.
func postWire(addr, query string, enc wire.Encoding, elements, win int, samples []float64) ([]float64, string) {
	f, err := wire.NewFrame(enc, elements, win, 0, 1, samples)
	if err != nil {
		fail(err)
	}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, f, 0); err != nil {
		fail(err)
	}
	note := fmt.Sprintf("%s wire frame, %d B (f64 would be %d B)",
		enc, buf.Len(), wire.FrameWireBytes(wire.Header{
			Encoding: wire.EncodingF64, Elements: elements, Window: win, TxCount: 1,
		}, 0))
	return post(addr, query, wire.ContentType, buf.Bytes(), note)
}

// post runs one HTTP round trip and decodes the response scanline.
func post(addr, query, ct string, body []byte, note string) ([]float64, string) {
	url := fmt.Sprintf("http://%s/beamform?%s", addr, query)
	resp, err := http.Post(url, ct, bytes.NewReader(body))
	if err != nil {
		fail(fmt.Errorf("POST %s: %w (is usbeamd running?)", url, err))
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		fail(fmt.Errorf("%s: %s", resp.Status, raw))
	}
	line := decodeSamples(raw, resp.Header.Get("X-Ultrabeam-Encoding"))
	return line, note + ", server elapsed " + resp.Header.Get("X-Ultrabeam-Elapsed-Ms") + " ms"
}

// decodeSamples parses a response body in the negotiated encoding.
func decodeSamples(raw []byte, enc string) []float64 {
	if enc == "f32" {
		if len(raw) == 0 || len(raw)%4 != 0 {
			fail(fmt.Errorf("response is %d bytes, not an f32 scanline", len(raw)))
		}
		out := make([]float64, len(raw)/4)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:])))
		}
		return out
	}
	if len(raw) == 0 || len(raw)%8 != 0 {
		fail(fmt.Errorf("response is %d bytes, not a float64 scanline", len(raw)))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// runStream pushes n compounds over one persistent connection and returns
// the last volume's samples.
func runStream(addr, query string, enc wire.Encoding, elements, win int, samples []float64, n int) ([]float64, string) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fail(fmt.Errorf("dial %s: %w (is usbeamd running with -stream-addr?)", addr, err))
	}
	defer conn.Close()
	if err := wire.WriteHello(conn, query); err != nil {
		fail(err)
	}
	if err := wire.ReadHelloReply(conn); err != nil {
		fail(fmt.Errorf("stream hello: %w", err))
	}
	f, err := wire.NewFrame(enc, elements, win, 0, 1, samples)
	if err != nil {
		fail(err)
	}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, f, 0); err != nil {
		fail(err)
	}
	// Push the whole burst, then drain the replies: the server pipelines.
	for i := 0; i < n; i++ {
		if _, err := conn.Write(buf.Bytes()); err != nil {
			fail(fmt.Errorf("push compound %d: %w", i, err))
		}
	}
	var last *wire.Volume
	for i := 0; i < n; i++ {
		v, err := wire.ReadVolume(conn, 0)
		if err != nil {
			fail(fmt.Errorf("volume %d: %w", i, err))
		}
		last = v
	}
	note := fmt.Sprintf("stream: %d × %s compounds of %d B on one connection", n, enc, buf.Len())
	return last.Data, note
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serveclient:", err)
	os.Exit(1)
}
