// Serveclient: a minimal client for a running usbeamd. It synthesizes one
// RF frame of a point scatterer on the reduced-scale geometry, sends it to
// the daemon, and prints the returned scanline through the volume center —
// the round trip the CI server-smoke step asserts on.
//
// The transport is selectable. -wire raw POSTs the legacy headerless
// float64 body; -wire i16|f32|f64 POSTs a self-describing wire frame
// (internal/wire) — i16 is the ADC-native format at roughly a third of the
// f64 bytes. -stream switches from HTTP to the persistent cine transport:
// one TCP connection, the query sent once, then -frames compounds pushed
// back to back with volumes read in order.
//
// The client is resilient by default: HTTP 503s (overloaded, draining,
// degraded) retry with jittered exponential backoff honoring the server's
// Retry-After hint, and the stream transport sequence-tracks its compounds
// — a GOAWAY or dead connection reconnects and resends only the frames the
// server never answered, so nothing is beamformed twice. -retries bounds
// both.
//
// Run `go run ./cmd/usbeamd -stream-addr :8643` in one terminal, then:
//
//	go run ./examples/serveclient -addr localhost:8642 -wire i16
//	go run ./examples/serveclient -stream localhost:8643 -wire i16 -frames 8
package main

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"ultrabeam"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/rf"
	"ultrabeam/internal/wire"
)

func main() {
	addr := flag.String("addr", "localhost:8642", "usbeamd HTTP address")
	wireFmt := flag.String("wire", "raw", "request format: raw (legacy float64 body) or i16|f32|f64 wire frames")
	respFmt := flag.String("resp", "f64", "response sample encoding: f64|f32")
	stream := flag.String("stream", "", "use the persistent cine stream transport at this TCP address instead of HTTP")
	frames := flag.Int("frames", 4, "compounds to push over the stream transport")
	retries := flag.Int("retries", 5, "retry budget: 503s and dead connections back off and try again this many times")
	flag.Parse()

	// One frame of the reduced Table I system: a point scatterer at 60%
	// depth, echoes synthesized per element at fs.
	spec := ultrabeam.ReducedSpec()
	bufs, err := rf.Synthesize(rf.Config{
		Arr: spec.Array(), Conv: spec.Converter(), Pulse: rf.NewPulse(spec.Fc, spec.B),
		BufSamples: spec.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.6 * spec.Depth()}))
	if err != nil {
		fail(err)
	}
	win := len(bufs[0].Samples)
	samples := make([]float64, len(bufs)*win) // element-major
	for d, b := range bufs {
		copy(samples[d*win:], b.Samples)
	}

	query := "spec=reduced&out=scanline&resp=" + *respFmt
	var enc wire.Encoding
	isWire := *wireFmt != "raw"
	if isWire {
		if enc, err = wire.ParseEncoding(*wireFmt); err != nil {
			fail(err)
		}
		query += "&fmt=" + enc.String()
		if enc != wire.EncodingF64 {
			// The narrowed encodings pair with the float32 session: the
			// server decodes them straight into its float32 echo planes.
			query += "&precision=float32"
		}
	}

	var line []float64
	var note string
	if *stream != "" {
		if !isWire {
			fail(fmt.Errorf("the stream transport carries wire frames: pick -wire i16|f32|f64"))
		}
		line, note = runStream(*stream, query, enc, spec.Elements(), win, samples, *frames, *retries)
	} else if isWire {
		line, note = postWire(*addr, query, enc, spec.Elements(), win, samples, *retries)
	} else {
		line, note = postRaw(*addr, query, samples, *retries)
	}

	peak, peakAt := 0.0, 0
	for i, v := range line {
		if a := math.Abs(v); a > peak {
			peak, peakAt = a, i
		}
	}
	fmt.Printf("scanline through %s, %d depth samples (%s)\n", spec.String(), len(line), note)
	fmt.Printf("peak |s| = %.4g at depth index %d (scatterer at 60%% depth = index %d)\n",
		peak, peakAt, spec.FocalDepth*60/100)
	// A coarse sparkline of the echo energy down the line of sight.
	const cols = 64
	bins := make([]float64, cols)
	for i, v := range line {
		b := i * cols / len(line)
		if a := math.Abs(v); a > bins[b] {
			bins[b] = a
		}
	}
	marks := []rune(" .:-=+*#%@")
	var spark []rune
	for _, v := range bins {
		i := int(v / peak * float64(len(marks)-1))
		spark = append(spark, marks[i])
	}
	fmt.Printf("|%s|\n", string(spark))
	if peak == 0 {
		fail(fmt.Errorf("returned scanline has no energy"))
	}
}

// backoff picks the delay before retry attempt+1. A Retry-After hint from
// the server wins (it is derived from actual queue depth and drain rate);
// otherwise exponential from 100ms capped at 5s. Both get ±25% jitter so a
// fleet of clients bounced by one overload burst does not reconverge on
// the server in lockstep.
func backoff(attempt int, retryAfter string) time.Duration {
	d := 100 * time.Millisecond << uint(min(attempt, 6))
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	if s, err := strconv.Atoi(strings.TrimSpace(retryAfter)); err == nil && s > 0 {
		d = time.Duration(s) * time.Second
	}
	return time.Duration(float64(d) * (0.75 + rand.Float64()/2))
}

// postRaw POSTs the legacy headerless float64 body.
func postRaw(addr, query string, samples []float64, retries int) ([]float64, string) {
	body := make([]byte, 8*len(samples))
	for i, v := range samples {
		binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(v))
	}
	return post(addr, query, "application/octet-stream", body, fmt.Sprintf("raw f64 body, %d B", len(body)), retries)
}

// postWire POSTs one wire frame in the chosen encoding.
func postWire(addr, query string, enc wire.Encoding, elements, win int, samples []float64, retries int) ([]float64, string) {
	f, err := wire.NewFrame(enc, elements, win, 0, 1, samples)
	if err != nil {
		fail(err)
	}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, f, 0); err != nil {
		fail(err)
	}
	note := fmt.Sprintf("%s wire frame, %d B (f64 would be %d B)",
		enc, buf.Len(), wire.FrameWireBytes(wire.Header{
			Encoding: wire.EncodingF64, Elements: elements, Window: win, TxCount: 1,
		}, 0))
	return post(addr, query, wire.ContentType, buf.Bytes(), note, retries)
}

// post runs one HTTP round trip and decodes the response scanline. Dead
// connections and 503s (overloaded, draining, degraded) retry with
// jittered backoff, honoring the server's Retry-After hint.
func post(addr, query, ct string, body []byte, note string, retries int) ([]float64, string) {
	url := fmt.Sprintf("http://%s/beamform?%s", addr, query)
	for attempt := 0; ; attempt++ {
		resp, err := http.Post(url, ct, bytes.NewReader(body))
		if err != nil {
			if attempt >= retries {
				fail(fmt.Errorf("POST %s: %w (is usbeamd running?)", url, err))
			}
			d := backoff(attempt, "")
			fmt.Fprintf(os.Stderr, "serveclient: %v; retrying in %v\n", err, d.Round(time.Millisecond))
			time.Sleep(d)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fail(err)
		}
		if resp.StatusCode == http.StatusServiceUnavailable && attempt < retries {
			d := backoff(attempt, resp.Header.Get("Retry-After"))
			fmt.Fprintf(os.Stderr, "serveclient: 503 %s; retrying in %v\n",
				strings.TrimSpace(string(raw)), d.Round(time.Millisecond))
			time.Sleep(d)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			fail(fmt.Errorf("%s: %s", resp.Status, raw))
		}
		line := decodeSamples(raw, resp.Header.Get("X-Ultrabeam-Encoding"))
		return line, note + ", server elapsed " + resp.Header.Get("X-Ultrabeam-Elapsed-Ms") + " ms"
	}
}

// decodeSamples parses a response body in the negotiated encoding.
func decodeSamples(raw []byte, enc string) []float64 {
	if enc == "f32" {
		if len(raw) == 0 || len(raw)%4 != 0 {
			fail(fmt.Errorf("response is %d bytes, not an f32 scanline", len(raw)))
		}
		out := make([]float64, len(raw)/4)
		for i := range out {
			out[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[4*i:])))
		}
		return out
	}
	if len(raw) == 0 || len(raw)%8 != 0 {
		fail(fmt.Errorf("response is %d bytes, not a float64 scanline", len(raw)))
	}
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// runStream pushes n compounds over the persistent cine transport and
// returns the last volume's samples. Frames are sequence-tracked: acked
// counts compounds the server has answered (a volume, or an in-band
// per-compound error — both are definitive answers and are never resent,
// so nothing is double-beamformed). A GOAWAY (server draining) or a dead
// connection reconnects with jittered backoff and resumes pushing from
// the first unanswered frame.
func runStream(addr, query string, enc wire.Encoding, elements, win int, samples []float64, n, retries int) ([]float64, string) {
	f, err := wire.NewFrame(enc, elements, win, 0, 1, samples)
	if err != nil {
		fail(err)
	}
	var buf bytes.Buffer
	if err := wire.WriteFrame(&buf, f, 0); err != nil {
		fail(err)
	}
	var last *wire.Volume
	acked, reconnects, attempt := 0, 0, 0
	for acked < n {
		if attempt > retries {
			fail(fmt.Errorf("stream: gave up after %d attempts with %d/%d compounds answered", attempt, acked, n))
		}
		if attempt > 0 {
			d := backoff(attempt-1, "")
			fmt.Fprintf(os.Stderr, "serveclient: stream reconnect %d (answered %d/%d) in %v\n",
				reconnects+1, acked, n, d.Round(time.Millisecond))
			time.Sleep(d)
			reconnects++
		}
		attempt++
		acked = streamOnce(addr, query, buf.Bytes(), acked, n, &last, &attempt)
	}
	if last == nil {
		fail(fmt.Errorf("stream: all %d compounds answered, none with a volume", n))
	}
	note := fmt.Sprintf("stream: %d × %s compounds of %d B, %d reconnect(s)", n, enc, buf.Len(), reconnects)
	return last.Data, note
}

// streamOnce runs one connection: hello, push every unanswered compound,
// read replies until done or the connection dies. Returns the updated
// acked count; progress resets the caller's retry attempt counter.
func streamOnce(addr, query string, frame []byte, acked, n int, last **wire.Volume, attempt *int) int {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "serveclient: dial %s: %v (is usbeamd running with -stream-addr?)\n", addr, err)
		return acked
	}
	defer conn.Close()
	if err := wire.WriteHello(conn, query); err != nil {
		return acked
	}
	if err := wire.ReadHelloReply(conn); err != nil {
		fmt.Fprintf(os.Stderr, "serveclient: stream hello refused: %v\n", err)
		return acked
	}
	// Push the whole unanswered burst, then drain the replies: the server
	// pipelines decode against the backlog. A write error is not fatal —
	// the server still answers every compound it read; the rest resend on
	// the next connection.
	pushed := 0
	for i := acked; i < n; i++ {
		if _, err := conn.Write(frame); err != nil {
			break
		}
		pushed++
	}
	for k := 0; k < pushed; k++ {
		v, err := wire.ReadVolume(conn, 0)
		if err == nil {
			*last, acked, *attempt = v, acked+1, 0
			continue
		}
		if wire.IsGoAway(err) {
			// Draining: this compound was not beamformed and nothing else
			// is coming on this connection. Resend from here elsewhere.
			fmt.Fprintf(os.Stderr, "serveclient: server draining (GOAWAY) after %d/%d\n", acked, n)
			return acked
		}
		var re *wire.RemoteError
		if errors.As(err, &re) {
			// In-band per-compound answer: definitive for this frame (it
			// counts as acked, never resent), stream still healthy.
			fmt.Fprintf(os.Stderr, "serveclient: compound %d rejected in-band: %v\n", acked, err)
			acked, *attempt = acked+1, 0
			continue
		}
		fmt.Fprintf(os.Stderr, "serveclient: stream read after %d/%d: %v\n", acked, n, err)
		return acked
	}
	return acked
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serveclient:", err)
	os.Exit(1)
}
