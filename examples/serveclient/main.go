// Serveclient: a minimal client for a running usbeamd (or a usbeamrouter
// fronting a cluster of them). It synthesizes one RF frame of a point
// scatterer on the reduced-scale geometry, sends it to the daemon, and
// prints the returned scanline through the volume center — the round trip
// the CI server-smoke step asserts on.
//
// The transport is selectable. -wire raw POSTs the legacy headerless
// float64 body; -wire i16|f32|f64 POSTs a self-describing wire frame —
// i16 is the ADC-native format at roughly a third of the f64 bytes.
// -stream switches from HTTP to the persistent cine transport: one TCP
// connection, the query sent once, then -frames compounds pushed back to
// back with volumes read in order.
//
// All of the transport logic — 503 backoff honoring Retry-After, stream
// sequence tracking, reconnect-and-resend on GOAWAY — lives in the
// importable SDK (ultrabeam/pkg/client); this example is just the SDK
// plus a phantom and a sparkline.
//
// Run `go run ./cmd/usbeamd -stream-addr :8643` in one terminal, then:
//
//	go run ./examples/serveclient -addr localhost:8642 -wire i16
//	go run ./examples/serveclient -stream localhost:8643 -wire i16 -frames 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"ultrabeam"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/rf"
	"ultrabeam/pkg/client"
)

func main() {
	addr := flag.String("addr", "localhost:8642", "usbeamd HTTP address")
	wireFmt := flag.String("wire", "raw", "request format: raw (legacy float64 body) or i16|f32|f64 wire frames")
	respFmt := flag.String("resp", "f64", "response sample encoding: f64|f32")
	prec := flag.String("prec", "", "session precision for wire requests: float32 (default for i16/f32 wire) or i16 (ADC-native fixed-point kernel)")
	stream := flag.String("stream", "", "use the persistent cine stream transport at this TCP address instead of HTTP")
	frames := flag.Int("frames", 4, "compounds to push over the stream transport")
	retries := flag.Int("retries", 5, "retry budget: 503s and dead connections back off and try again this many times")
	flag.Parse()

	// One frame of the reduced Table I system: a point scatterer at 60%
	// depth, echoes synthesized per element at fs.
	spec := ultrabeam.ReducedSpec()
	bufs, err := rf.Synthesize(rf.Config{
		Arr: spec.Array(), Conv: spec.Converter(), Pulse: rf.NewPulse(spec.Fc, spec.B),
		BufSamples: spec.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.6 * spec.Depth()}))
	if err != nil {
		fail(err)
	}
	win := len(bufs[0].Samples)
	samples := make([]float64, len(bufs)*win) // element-major
	for d, b := range bufs {
		copy(samples[d*win:], b.Samples)
	}

	query := "spec=reduced&out=scanline&resp=" + *respFmt
	isWire := *wireFmt != "raw"
	if isWire {
		query += "&fmt=" + *wireFmt
		switch {
		case *prec != "":
			// Explicit session precision; i16 wire on a prec=i16 session
			// is the fully ADC-native path — the server decodes straight
			// into guarded int16 planes and runs the fixed-point kernel.
			query += "&precision=" + *prec
		case *wireFmt != "f64":
			// The narrowed encodings default to the float32 session: the
			// server decodes them straight into its float32 echo planes.
			query += "&precision=float32"
		}
	} else if *prec != "" {
		fail(errors.New("-prec pairs with a wire request format: pick -wire i16|f32|f64"))
	}

	c := &client.Client{
		Addr:       *addr,
		StreamAddr: *stream,
		Retries:    *retries,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "serveclient: "+format+"\n", args...)
		},
	}

	var line []float64
	var note string
	if *stream != "" {
		if !isWire {
			fail(fmt.Errorf("the stream transport carries wire frames: pick -wire i16|f32|f64"))
		}
		line, note = runStream(c, query, spec.Elements(), win, samples, *frames)
	} else {
		res, err := c.Post(context.Background(), query, *wireFmt, spec.Elements(), win, samples)
		if err != nil {
			fail(err)
		}
		line = res.Data
		note = fmt.Sprintf("%s body, %s response, server elapsed %s ms",
			*wireFmt, res.Encoding, res.Header.Get("X-Ultrabeam-Elapsed-Ms"))
	}

	peak, peakAt := 0.0, 0
	for i, v := range line {
		if a := math.Abs(v); a > peak {
			peak, peakAt = a, i
		}
	}
	fmt.Printf("scanline through %s, %d depth samples (%s)\n", spec.String(), len(line), note)
	fmt.Printf("peak |s| = %.4g at depth index %d (scatterer at 60%% depth = index %d)\n",
		peak, peakAt, spec.FocalDepth*60/100)
	// A coarse sparkline of the echo energy down the line of sight.
	const cols = 64
	bins := make([]float64, cols)
	for i, v := range line {
		b := i * cols / len(line)
		if a := math.Abs(v); a > bins[b] {
			bins[b] = a
		}
	}
	marks := []rune(" .:-=+*#%@")
	var spark []rune
	for _, v := range bins {
		i := int(v / peak * float64(len(marks)-1))
		spark = append(spark, marks[i])
	}
	fmt.Printf("|%s|\n", string(spark))
	if peak == 0 {
		fail(fmt.Errorf("returned scanline has no energy"))
	}
}

// runStream pushes n compounds over the persistent cine transport and
// returns the last volume's samples. The SDK sequence-tracks the burst: a
// GOAWAY or dead connection reconnects and resends only unanswered
// frames, and an in-band per-compound error counts as answered (never
// resent, never double-beamformed).
func runStream(c *client.Client, query string, elements, win int, samples []float64, n int) ([]float64, string) {
	s, err := c.DialStream(context.Background(), query)
	if err != nil {
		fail(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Send(client.Frame{Elements: elements, Window: win, Samples: samples}); err != nil {
			fail(err)
		}
	}
	var last *client.Volume
	for k := 0; k < n; k++ {
		v, err := s.Recv(context.Background())
		if err != nil {
			var re *client.RemoteError
			if errors.As(err, &re) {
				fmt.Fprintf(os.Stderr, "serveclient: compound %d rejected in-band: %v\n", k, err)
				continue
			}
			fail(err)
		}
		last = v
	}
	if last == nil {
		fail(fmt.Errorf("stream: all %d compounds answered, none with a volume", n))
	}
	note := fmt.Sprintf("stream: %d compounds, %d reconnect(s)", n, s.Reconnects())
	return last.Data, note
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serveclient:", err)
	os.Exit(1)
}
