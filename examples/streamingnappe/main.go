// streamingnappe demonstrates the §V-B DRAM→BRAM circular-buffer streaming
// of the reference delay table: the on-chip buffer holds a sliding window
// of nappe slices while the beamformer consumes them, and the example
// verifies bandwidth, prefetch margin and stall behaviour at and below the
// rated DRAM bandwidth — plus the bank-layout rule that keeps 128 parallel
// readers conflict-free.
package main

import (
	"fmt"

	"ultrabeam"
	"ultrabeam/internal/memmodel"
	"ultrabeam/internal/tablesteer"
)

func main() {
	spec := ultrabeam.PaperSpec()
	p := spec.NewTableSteer(18)
	arch := tablesteer.PaperArch(18)

	// §V-B example: 64 insonifications/volume at 15 Hz → 960 refills/s.
	stream := p.Stream(arch, 960)
	fmt.Printf("reference table: %d words × %d bits (%.1f Mb off-chip)\n",
		stream.TableWords, stream.WordBits,
		float64(stream.TableWords*stream.WordBits)/1e6)
	fmt.Printf("circular buffer: %d words (%.1f Mb on-chip, %d nappes deep)\n",
		stream.BufferWords, float64(stream.BufferBits())/1e6,
		stream.BufferWords/stream.WordsPerNappe)
	fmt.Printf("DRAM bandwidth:  %.2f GB/s (paper: ≈5.3 GB/s)\n",
		stream.OffchipBandwidth()/1e9)
	fmt.Printf("prefetch margin: %d cycles (paper: \"an ample margin of 1k cycles\")\n\n",
		stream.MarginCycles())

	rated := stream.RequiredFillRate() / stream.ClockHz // words per cycle
	for _, factor := range []float64{1.5, 1.05, 0.95, 0.7} {
		stalls := stream.SimulateStream(1000, rated*factor)
		fmt.Printf("fill at %.0f%% of consumption rate over 1000 nappes: %6d stall cycles\n",
			factor*100, stalls)
	}

	// Bank layout: staggered placement lets 128 consecutive nappes be read
	// in the same cycle; chunked placement collides.
	arr := memmodel.BankArray{Spec: memmodel.BankSpec{WordBits: 18, Lines: 1024}, Banks: 128}
	depths := make([]int, 128)
	for i := range depths {
		depths[i] = 100 + i
	}
	for _, layout := range []memmodel.Layout{memmodel.StaggeredLayout, memmodel.ChunkedLayout} {
		pl := memmodel.Placement{Arr: arr, Layout: layout, Depths: spec.FocalDepth}
		fmt.Printf("\n%s layout: %d bank conflicts for 128 parallel nappe readers",
			layout, pl.Conflicts(depths))
	}
	fmt.Println()
}
