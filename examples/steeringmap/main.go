// steeringmap maps the TABLESTEER first-order steering error over depth and
// angle (the ablation behind §VI-A's observation that "the far-field
// approximation's worst errors occur only at extremely short distances from
// the origin and at the extreme angles of the field of view"). It prints a
// coarse text heat map and the per-depth mean profile along the most-steered
// line of sight.
package main

import (
	"fmt"
	"math"

	"ultrabeam"
	"ultrabeam/internal/tablesteer"
)

func main() {
	spec := ultrabeam.PaperSpec()
	cfg := tablesteer.Config{
		Vol: spec.Volume(), Arr: spec.Array(), Conv: spec.Converter(),
	}
	cfg.RefFmt, cfg.CorrFmt = tablesteer.Bits18Config()

	// Heat map: max |error| (samples) over a corner element, θ × depth.
	fmt.Println("max |steering error| in samples (rows: depth, cols: θ), corner element:")
	xD := cfg.Arr.ElementX(cfg.Arr.NX - 1)
	yD := cfg.Arr.ElementY(cfg.Arr.NY - 1)
	const cols = 16
	depths := []int{0, 2, 5, 10, 25, 50, 100, 250, 500, 999}
	fmt.Printf("%10s", "depth\\θ")
	for c := 0; c < cols; c++ {
		it := c * (cfg.Vol.Theta.N - 1) / (cols - 1)
		fmt.Printf("%6.0f°", thetaDeg(cfg, it))
	}
	fmt.Println()
	for _, id := range depths {
		r := cfg.Vol.Depth.At(id)
		fmt.Printf("%8.1fmm", r*1e3)
		for c := 0; c < cols; c++ {
			it := c * (cfg.Vol.Theta.N - 1) / (cols - 1)
			theta := cfg.Vol.Theta.At(it)
			worst := 0.0
			for _, ip := range []int{0, cfg.Vol.Phi.N / 2, cfg.Vol.Phi.N - 1} {
				e := math.Abs(tablesteer.SteerErrorSeconds(r, theta, cfg.Vol.Phi.At(ip), xD, yD, cfg.Conv.C))
				if e > worst {
					worst = e
				}
			}
			fmt.Printf("%7.1f", worst*cfg.Conv.Fs)
		}
		fmt.Println()
	}

	// Depth profile along the most-steered corner direction.
	fmt.Println("\nmean |error| per depth at the extreme (θ,φ) corner (samples):")
	prof := tablesteer.DepthErrorProfile(cfg, 0, 0, 9)
	for _, id := range depths {
		fmt.Printf("  depth %6.1f mm: %7.3f\n", cfg.Vol.Depth.At(id)*1e3, prof[id])
	}

	// Theoretical bound for calibration.
	bound := tablesteer.WorstTaylorBound(cfg, 1.0)
	fmt.Printf("\nLagrange bound over the far-field region: %.2f µs = %.0f samples (paper: 6.7 µs / 214)\n",
		bound*1e6, bound*cfg.Conv.Fs)
}

func thetaDeg(cfg tablesteer.Config, it int) float64 {
	return cfg.Vol.Theta.At(it) * 180 / math.Pi
}
