// Quickstart: build the Table I system, generate delays through all three
// architectures for a handful of (focal point, element) pairs, and show the
// error each approximation introduces relative to the exact delay law.
package main

import (
	"fmt"

	"ultrabeam"
)

func main() {
	// The paper's full Table I system: 100×100 elements, 128×128×1000
	// focal points, 32 MHz sampling. Building TABLESTEER at this scale
	// materializes the real 2.5×10⁶-entry reference table (~50 ms).
	spec := ultrabeam.PaperSpec()
	fmt.Println("system:", spec)

	exact := spec.NewExact()
	tablefree := spec.NewTableFree()
	tablefree.UseFixed = true // the synthesized fixed-point datapath
	tablesteer := spec.NewTableSteer(18)
	tablesteer.UseFixed = true

	fmt.Printf("\nTABLEFREE uses %d PWL segments (paper: ~70)\n", tablefree.NumSegments())
	fmt.Printf("TABLESTEER stores %d reference + %d correction entries (%.1f Mb)\n\n",
		tablesteer.Ref.Entries(), tablesteer.Corr.Entries(),
		float64(tablesteer.StorageBits())/1e6)

	// A few probe points: (θ index, φ index, depth index, element column, row).
	cases := [][5]int{
		{64, 64, 500, 50, 50},  // mid volume, central element
		{0, 64, 100, 0, 99},    // extreme azimuth, shallow, corner element
		{127, 127, 999, 99, 0}, // extreme corner, deepest nappe
	}
	fmt.Println("delays in samples (1 sample = 31.25 ns):")
	fmt.Printf("%-28s %12s %12s %12s\n", "point/element", "exact", "tablefree", "tablesteer")
	for _, c := range cases {
		e := exact.DelaySamples(c[0], c[1], c[2], c[3], c[4])
		tf := tablefree.DelaySamples(c[0], c[1], c[2], c[3], c[4])
		ts := tablesteer.DelaySamples(c[0], c[1], c[2], c[3], c[4])
		fmt.Printf("θ=%3d φ=%3d d=%3d D=(%2d,%2d) %12.2f %12.2f %12.2f\n",
			c[0], c[1], c[2], c[3], c[4], e, tf, ts)
		fmt.Printf("%-28s %12s %+12.3f %+12.3f\n", "  error vs exact", "—", tf-e, ts-e)
	}
}
