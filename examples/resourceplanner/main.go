// resourceplanner sweeps the FPGA feasibility space the way §VI-B reasons
// about device generations: for each device and delay architecture it
// reports what fits, the achievable frame rate, and the aperture supported —
// extending Table II into a design-space exploration.
package main

import (
	"fmt"
	"os"

	"ultrabeam"
	"ultrabeam/internal/fpga"
	"ultrabeam/internal/report"
	"ultrabeam/internal/tablefree"
	"ultrabeam/internal/tablesteer"
)

func main() {
	spec := ultrabeam.PaperSpec()
	devices := []fpga.Device{fpga.Virtex7VX1140T2(), fpga.VirtexUltraScale()}

	t := report.NewTable("FPGA design space (extends Table II / §VI-B)",
		"device", "architecture", "fits", "LUTs", "BRAM", "clock",
		"channels", "frame rate", "offchip BW")

	for _, d := range devices {
		// TABLEFREE: pack units until the LUT budget runs out.
		unit := fpga.PaperTableFreeUnit(70)
		des := fpga.FitTableFree(d, unit, spec.ElemX)
		u := des.Utilization(d)
		law := tablefree.Throughput{ClockHz: u.ClockHz, Units: des.Units,
			CyclesPerPointOverhead: tablefree.PaperOverhead}
		t.Add(d.Name, "TABLEFREE", yes(u.Fits(d)),
			report.Pct(u.LUTFrac(d)), report.Pct(u.BRAMFrac(d)),
			fmt.Sprintf("%.0f MHz", u.ClockHz/1e6),
			fmt.Sprintf("%d×%d", des.Channels, des.Channels),
			fmt.Sprintf("%.1f fps", law.FrameRate(spec.Points())),
			"none")

		// TABLESTEER at both precisions.
		for _, bits := range []int{14, 18} {
			p := spec.NewTableSteer(bits)
			arch := tablesteer.PaperArch(bits)
			stream := p.Stream(arch, 960)
			design := fpga.TableSteerDesign{
				WordBits: bits, Blocks: arch.Blocks, AddersPerBl: arch.Block.Adders(),
				CorrBits:   p.Corr.StorageBits(),
				BufferBits: arch.OnChipBufferBits(),
				OffchipBps: stream.OffchipBandwidth(),
			}
			du := design.Utilization(d)
			t.Add(d.Name, fmt.Sprintf("TABLESTEER-%db", bits), yes(du.Fits(d)),
				report.Pct(du.LUTFrac(d)), report.Pct(du.BRAMFrac(d)),
				fmt.Sprintf("%.0f MHz", du.ClockHz/1e6),
				fmt.Sprintf("%d×%d", spec.ElemX, spec.ElemY),
				fmt.Sprintf("%.1f fps", arch.FrameRate(spec.Points(), spec.Elements())),
				fmt.Sprintf("%.1f GB/s", du.OffchipB/1e9))
		}

		// TABLESTEER with the whole reference table on chip (§V-B's "steep
		// BRAM cost" alternative: no DRAM traffic at all).
		p := spec.NewTableSteer(18)
		arch := tablesteer.PaperArch(18)
		onchip := fpga.TableSteerDesign{
			WordBits: 18, Blocks: arch.Blocks, AddersPerBl: arch.Block.Adders(),
			CorrBits:   p.Corr.StorageBits(),
			BufferBits: p.Ref.StorageBits(), // full 45 Mb resident
		}
		ou := onchip.Utilization(d)
		t.Add(d.Name, "TABLESTEER-18b (all on-chip)", yes(ou.Fits(d)),
			report.Pct(ou.LUTFrac(d)), report.Pct(ou.BRAMFrac(d)),
			fmt.Sprintf("%.0f MHz", ou.ClockHz/1e6),
			fmt.Sprintf("%d×%d", spec.ElemX, spec.ElemY),
			fmt.Sprintf("%.1f fps", arch.FrameRate(spec.Points(), spec.Elements())),
			"none")
	}

	if err := t.Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "resourceplanner:", err)
		os.Exit(1)
	}
}

func yes(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
