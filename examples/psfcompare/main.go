// psfcompare runs the §II-A image-quality experiment: a point scatterer is
// imaged through exact, TABLEFREE and TABLESTEER delays and the resulting
// point-spread functions and volume similarities are compared. The paper's
// claim — "image quality will be the same regardless of how delays are
// obtained at runtime, so long as delays are equally accurate" — shows up
// as similarities ≈ 1 and identical PSF peak positions.
package main

import (
	"fmt"
	"os"

	"ultrabeam"
	"ultrabeam/internal/experiments"
)

func main() {
	spec := ultrabeam.ReducedSpec()
	// A 2-D slice (single φ plane) keeps the run under a second while
	// preserving the paper's angular span and RF chain.
	spec.FocalTheta, spec.FocalPhi, spec.FocalDepth = 41, 1, 200
	spec.PhiDeg = 0
	spec.DepthLambda = 100 // 38.5 mm

	res, err := experiments.ImageQuality(spec, 0.02)
	if err != nil {
		fmt.Fprintln(os.Stderr, "psfcompare:", err)
		os.Exit(1)
	}
	if err := res.Table().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "psfcompare:", err)
		os.Exit(1)
	}
	fmt.Println("\nPSF peak location per provider (grid indices):")
	for name, m := range res.Metrics {
		fmt.Printf("  %-16s θ=%d depth=%d (%.2f mm)\n", name,
			m.PeakIndex.Theta, m.PeakIndex.Depth,
			spec.Volume().Depth.At(m.PeakIndex.Depth)*1e3)
	}
}
