// Benchmarks regenerating every table and figure of the paper (DESIGN.md
// §4 maps IDs to artifacts). Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the reproduced headline quantity as a custom
// metric so `go test -bench` output doubles as the reproduction record.
package ultrabeam_test

import (
	"testing"

	"ultrabeam/internal/beamform"
	"ultrabeam/internal/core"
	"ultrabeam/internal/delay"
	"ultrabeam/internal/delaycache"
	"ultrabeam/internal/experiments"
	"ultrabeam/internal/fpga"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/rf"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/tablefree"
	"ultrabeam/internal/tablesteer"
	"ultrabeam/internal/xdcr"
)

// BenchmarkTable1_Specs regenerates Table I (system specification).
func BenchmarkTable1_Specs(b *testing.B) {
	s := core.PaperSpec()
	for i := 0; i < b.N; i++ {
		if err := s.Validate(); err != nil {
			b.Fatal(err)
		}
		_ = experiments.SpecsTable(s)
	}
	b.ReportMetric(s.DelaysPerFrame(), "delays/frame")
}

// BenchmarkFigure1_SweepOrders regenerates the Algorithm 1 / Fig. 1
// locality comparison.
func BenchmarkFigure1_SweepOrders(b *testing.B) {
	s := core.ReducedSpec()
	var r experiments.OrdersResult
	for i := 0; i < b.N; i++ {
		r = experiments.SweepOrders(s)
	}
	b.ReportMetric(float64(r.ScanlineChanges)/float64(r.NappeChanges), "locality-ratio")
}

// BenchmarkFigure2_SqrtApprox regenerates the Fig. 2(b) error profile and
// the ~70-segment PWL construction.
func BenchmarkFigure2_SqrtApprox(b *testing.B) {
	s := core.PaperSpec()
	var r experiments.Fig2Result
	for i := 0; i < b.N; i++ {
		r = experiments.Figure2(s, 4096)
	}
	b.ReportMetric(float64(r.Segments), "segments")
	b.ReportMetric(r.MaxErr, "max-err-samples")
}

// BenchmarkSecVIA_TableFreeAccuracy regenerates the §VI-A TABLEFREE
// accuracy statistics (paper: ideal mean ≈0.204; fixed mean ≈0.2489, max 2).
func BenchmarkSecVIA_TableFreeAccuracy(b *testing.B) {
	s := core.PaperSpec()
	var r experiments.TableFreeAccuracyResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableFreeAccuracy(s, 16, 24)
	}
	b.ReportMetric(r.Ideal.MeanAbs, "ideal-mean-samples")
	b.ReportMetric(r.Fixed.MeanAbsIndex, "fixed-mean-index-err")
	b.ReportMetric(float64(r.Fixed.MaxAbsIndex), "fixed-max-index-err")
}

// BenchmarkFigure3a_RefTable regenerates the folded, directivity-pruned
// reference delay table (2.5×10⁶ entries, 45 Mb).
func BenchmarkFigure3a_RefTable(b *testing.B) {
	s := core.PaperSpec()
	var r experiments.Fig3aResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r = experiments.Figure3a(s, 10, 50)
	}
	b.ReportMetric(float64(r.Entries), "entries")
	b.ReportMetric(float64(r.StorageBits)/1e6, "storage-Mb")
}

// BenchmarkSecVIA_TableSteerAccuracy regenerates the §VI-A steering-error
// sweep (paper: mean 1.4285 samples, filtered max 99, bound 214).
func BenchmarkSecVIA_TableSteerAccuracy(b *testing.B) {
	s := core.PaperSpec()
	opt := tablesteer.SweepOptions{StrideTheta: 8, StridePhi: 8, StrideDepth: 8,
		StrideElem: 9, Parallel: true}
	var r experiments.SteerAccuracyResult
	for i := 0; i < b.N; i++ {
		r = experiments.SteerAccuracy(s, opt)
	}
	b.ReportMetric(r.Stats.MeanAbsSecAcc*s.Fs, "mean-samples")
	b.ReportMetric(r.Stats.MaxAcceptedSamples(s.Fs), "max-filtered-samples")
	b.ReportMetric(r.BoundSec*s.Fs, "bound-samples")
}

// BenchmarkSecVIA_FixedPointMonteCarlo regenerates the §VI-A fixed-point
// index-error Monte Carlo at the paper's 10×10⁶ sample count.
func BenchmarkSecVIA_FixedPointMonteCarlo(b *testing.B) {
	var r experiments.FixedPointResult
	for i := 0; i < b.N; i++ {
		r = experiments.FixedPoint(10_000_000, 1)
	}
	b.ReportMetric(r.Off13, "frac-off-13b")
	b.ReportMetric(r.Off18Cmb, "frac-off-18b")
}

// BenchmarkSecVB_StorageBandwidth regenerates the §V-B memory accounting
// (45 Mb + 14.3 Mb tables, 5.3/4.1 GB/s DRAM streams, 164×10⁹ baseline).
func BenchmarkSecVB_StorageBandwidth(b *testing.B) {
	s := core.PaperSpec()
	var r experiments.StorageResult
	for i := 0; i < b.N; i++ {
		r = experiments.Storage(s)
	}
	b.ReportMetric(r.Stream18GBs, "GBps-18b")
	b.ReportMetric(r.Stream14GBs, "GBps-14b")
	b.ReportMetric(r.Naive.Entries(), "naive-entries")
}

// BenchmarkTable2_Synthesis regenerates the full Table II comparison.
func BenchmarkTable2_Synthesis(b *testing.B) {
	s := core.PaperSpec()
	tf := experiments.TableFreeAccuracy(s, 16, 24)
	steer := experiments.SteerAccuracy(s, tablesteer.SweepOptions{
		StrideTheta: 16, StridePhi: 16, StrideDepth: 16, StrideElem: 12, Parallel: true})
	var r experiments.TableIIResult
	for i := 0; i < b.N; i++ {
		r = experiments.TableII(s, fpga.Virtex7VX1140T2(), tf, steer)
	}
	b.ReportMetric(r.Rows[0].FrameRate, "tablefree-fps")
	b.ReportMetric(r.Rows[2].FrameRate, "tablesteer18-fps")
	b.ReportMetric(r.Rows[2].LUTFrac, "tablesteer18-lut-frac")
}

// BenchmarkSecVIB_Throughput regenerates the §IV-B/§V-B performance laws.
func BenchmarkSecVIB_Throughput(b *testing.B) {
	s := core.PaperSpec()
	var r experiments.ThroughputResult
	for i := 0; i < b.N; i++ {
		r = experiments.Throughput(s)
	}
	b.ReportMetric(r.TFPeak/1e12, "TF-Tdelays")
	b.ReportMetric(r.TSPeak/1e12, "TS-Tdelays")
}

// BenchmarkImageQuality_PSF regenerates the §II-A image-quality experiment
// at reduced scale (similarity ≈1 across delay architectures).
func BenchmarkImageQuality_PSF(b *testing.B) {
	s := core.ReducedSpec()
	s.FocalTheta, s.FocalPhi, s.FocalDepth = 21, 1, 120
	s.PhiDeg = 0
	s.DepthLambda = 80
	var r experiments.ImageQualityResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = experiments.ImageQuality(s, 0.02)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Similarity["tablefree-fixed"], "similarity-tablefree")
	b.ReportMetric(r.Similarity["tablesteer-18b"], "similarity-tablesteer")
}

// BenchmarkBeamform_Scalar and BenchmarkBeamform_Block contrast the two
// engine datapaths on the full ReducedSpec pipeline (ISSUE 1 acceptance:
// block ≥ 2× scalar). Both report delays/s — the paper's figure of merit —
// as a custom metric so the reproduction log records the speedup.

func BenchmarkBeamform_Scalar(b *testing.B) {
	runBeamformPath(b, beamform.ScalarPath)
}

func BenchmarkBeamform_Block(b *testing.B) {
	runBeamformPath(b, beamform.BlockPath)
}

func runBeamformPath(b *testing.B, path beamform.Path) {
	s := core.ReducedSpec()
	bufs, err := rf.Synthesize(rf.Config{
		Arr: s.Array(), Conv: s.Converter(), Pulse: rf.NewPulse(s.Fc, s.B),
		BufSamples: s.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.02}))
	if err != nil {
		b.Fatal(err)
	}
	eng := s.NewBeamformer(xdcr.Hann, scan.NappeOrder)
	eng.Cfg.Path = path
	p := s.NewExact()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Beamform(p, bufs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	delays := s.DelaysPerFrame() * float64(b.N)
	b.ReportMetric(delays/b.Elapsed().Seconds(), "delays/s")
}

// BenchmarkFillNappe measures the raw bulk-generation rate of each native
// BlockProvider against its ScalarAdapter-wrapped self.

func BenchmarkFillNappe(b *testing.B) {
	s := core.ReducedSpec()
	tf := s.NewTableFree()
	tf.UseFixed = true
	ts := s.NewTableSteer(18)
	ts.UseFixed = true
	for _, p := range []delay.Provider{s.NewExact(), tf, ts} {
		layout := delay.Layout{NTheta: s.FocalTheta, NPhi: s.FocalPhi, NX: s.ElemX, NY: s.ElemY}
		for _, bench := range []struct {
			name string
			bp   delay.BlockProvider
		}{
			{p.Name() + "/block", delay.AsBlock(p, layout)},
			{p.Name() + "/scalar", &delay.ScalarAdapter{P: p, L: layout}},
		} {
			b.Run(bench.name, func(b *testing.B) {
				dst := make([]float64, layout.BlockLen())
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					bench.bp.FillNappe(i%s.FocalDepth, dst)
				}
				b.StopTimer()
				rate := float64(layout.BlockLen()) * float64(b.N) / b.Elapsed().Seconds()
				b.ReportMetric(rate, "delays/s")
			})
		}
	}
}

// Raw datapath microbenchmarks: the per-delay cost of each provider.

func BenchmarkProviderExact(b *testing.B) {
	s := core.ReducedSpec()
	p := s.NewExact()
	runProvider(b, s, p)
}

func BenchmarkProviderTableFree(b *testing.B) {
	s := core.ReducedSpec()
	p := s.NewTableFree()
	p.UseFixed = true
	runProvider(b, s, p)
}

func BenchmarkProviderTableSteer(b *testing.B) {
	s := core.ReducedSpec()
	p := s.NewTableSteer(18)
	p.UseFixed = true
	runProvider(b, s, p)
}

func runProvider(b *testing.B, s core.SystemSpec, p delay.Provider) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.DelaySamples(i%s.FocalTheta, (i/7)%s.FocalPhi, i%s.FocalDepth,
			i%s.ElemX, (i/3)%s.ElemY)
	}
}

// Compile-time interface checks for every provider implementation: all
// three architectures implement the scalar, block and narrow-block
// interfaces (the ScalarAdapter lifts any Provider onto both block forms).
var (
	_ delay.Provider        = (*delay.Exact)(nil)
	_ delay.Provider        = (*tablefree.Provider)(nil)
	_ delay.Provider        = (*tablesteer.Provider)(nil)
	_ delay.BlockProvider   = (*delay.Exact)(nil)
	_ delay.BlockProvider   = (*tablefree.Provider)(nil)
	_ delay.BlockProvider   = (*tablesteer.Provider)(nil)
	_ delay.BlockProvider   = (*delay.ScalarAdapter)(nil)
	_ delay.BlockProvider16 = (*delay.Exact)(nil)
	_ delay.BlockProvider16 = (*tablefree.Provider)(nil)
	_ delay.BlockProvider16 = (*tablesteer.Provider)(nil)
	_ delay.BlockProvider16 = (*delay.ScalarAdapter)(nil)
	_ delay.BlockProvider16 = (*delaycache.Cache)(nil)
)

// Multi-frame session benchmarks (ISSUE 2): one iteration = one frame
// through a persistent Session. The cached variants warm a full-residency
// delaycache outside the timer, so the steady state measured is the cine
// regime where delay generation is fully amortized — the acceptance target
// is ≥3× frames/s over the uncached block path and 0 allocs/op. TABLEFREE
// (fixed) is the compute-bound §IV architecture whose generation the cache
// amortizes hardest; exact bounds the win for the cheapest native fill.

func BenchmarkSessionFrames(b *testing.B) {
	s := core.ReducedSpec()
	providers := map[string]func() delay.Provider{
		"exact": func() delay.Provider { return s.NewExact() },
		"tablefree-fixed": func() delay.Provider {
			p := s.NewTableFree()
			p.UseFixed = true
			return p
		},
	}
	for _, name := range []string{"exact", "tablefree-fixed"} {
		for _, cached := range []bool{false, true} {
			label := name + "/uncached"
			if cached {
				label = name + "/cached"
			}
			b.Run(label, func(b *testing.B) {
				runSessionFrames(b, s, providers[name](), cached)
			})
		}
	}
}

func runSessionFrames(b *testing.B, s core.SystemSpec, p delay.Provider, cached bool) {
	bufs, err := rf.Synthesize(rf.Config{
		Arr: s.Array(), Conv: s.Converter(), Pulse: rf.NewPulse(s.Fc, s.B),
		BufSamples: s.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.02}))
	if err != nil {
		b.Fatal(err)
	}
	var sess *beamform.Session
	if cached {
		var cache *delaycache.Cache
		sess, cache, err = s.NewCachedSession(xdcr.Hann, p, -1)
		if err != nil {
			b.Fatal(err)
		}
		cache.Warm()
	} else {
		sess, err = s.NewBeamformer(xdcr.Hann, scan.NappeOrder).NewSession(p)
		if err != nil {
			b.Fatal(err)
		}
	}
	defer sess.Close()
	out := &beamform.Volume{Vol: s.Volume(), Data: make([]float64, s.Points())}
	if err := sess.BeamformInto(out, bufs); err != nil { // steady state
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sess.BeamformInto(out, bufs); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
	b.ReportMetric(s.DelaysPerFrame()*float64(b.N)/b.Elapsed().Seconds(), "delays/s")
}

// BenchmarkKernelPrecision contrasts the three session datapaths on the
// steady-state cine regime (tablefree-fixed, full cache residency): the
// PR-2 wide baseline (float64 blocks + float64 echo), the narrow-delay
// golden path (int16 blocks + float64 echo, bit-identical), and the narrow
// kernel (int16 blocks + flattened float32 echo, 4-way unrolled). The
// ISSUE 3 acceptance criterion is float32 ≥ 1.5× the wide frames/s.
func BenchmarkKernelPrecision(b *testing.B) {
	s := core.ReducedSpec()
	bufs, err := rf.Synthesize(rf.Config{
		Arr: s.Array(), Conv: s.Converter(), Pulse: rf.NewPulse(s.Fc, s.B),
		BufSamples: s.EchoBufferSamples(),
	}, rf.PointPhantom(geom.Vec3{Z: 0.02}))
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		prec beamform.Precision
		wide bool
	}{
		{"wide", beamform.PrecisionWide, true},
		{"float64", beamform.PrecisionFloat64, false},
		{"float32", beamform.PrecisionFloat32, false},
	} {
		b.Run(tc.name, func(b *testing.B) {
			p := s.NewTableFree()
			p.UseFixed = true
			cache, err := delaycache.New(delaycache.Config{
				Provider: p, Depths: s.FocalDepth, BudgetBytes: -1, Wide: tc.wide,
			})
			if err != nil {
				b.Fatal(err)
			}
			cache.Warm()
			eng := s.NewBeamformer(xdcr.Hann, scan.NappeOrder)
			eng.Cfg.Precision = tc.prec
			sess, err := eng.NewSession(cache)
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			out := &beamform.Volume{Vol: s.Volume(), Data: make([]float64, s.Points())}
			if err := sess.BeamformInto(out, bufs); err != nil { // steady state
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sess.BeamformInto(out, bufs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/s")
			b.ReportMetric(s.DelaysPerFrame()*float64(b.N)/b.Elapsed().Seconds(), "delays/s")
		})
	}
}

// BenchmarkDelayCacheFillNappe isolates the cache's copy-serve path against
// regenerating the block, on one ReducedSpec nappe.
func BenchmarkDelayCacheFillNappe(b *testing.B) {
	s := core.ReducedSpec()
	e := s.NewExact()
	cache, err := delaycache.New(delaycache.Config{
		Provider: e, Depths: s.FocalDepth, BudgetBytes: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]float64, e.Layout().BlockLen())
	for _, bench := range []struct {
		name string
		bp   delay.BlockProvider
	}{{"cached", cache}, {"generate", e}} {
		b.Run(bench.name, func(b *testing.B) {
			bench.bp.FillNappe(0, dst) // warm
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				bench.bp.FillNappe(0, dst)
			}
			b.StopTimer()
			rate := float64(e.Layout().BlockLen()) * float64(b.N) / b.Elapsed().Seconds()
			b.ReportMetric(rate, "delays/s")
		})
	}
}
