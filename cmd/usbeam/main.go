// Command usbeam regenerates the paper's tables, figures and section
// experiments from the command line.
//
// Usage:
//
//	usbeam <subcommand> [flags]
//
// Subcommands:
//
//	specs       Table I system specification
//	orders      Algorithm 1 / Fig. 1 sweep-order locality
//	figure2     Fig. 2(b) PWL square-root error profile (CSV to -out)
//	figure3a    Fig. 3(a) reference-table dot cloud (CSV to -out)
//	figure3c    Fig. 3(c) steering-correction plane (CSV to -out)
//	figure3d    Fig. 3(d) compensated table section (CSV to -out)
//	accuracy    §VI-A accuracy statistics (-arch tablefree|tablesteer)
//	fixedpoint  §VI-A fixed-point Monte Carlo
//	storage     §II / §V-B storage and bandwidth accounting
//	throughput  §IV-B / §V-B performance laws
//	bound       §V-A Lagrange bound on the steering error
//	block       B1 block-vs-scalar delay-generation rates (always reduced scale)
//	quality     §II-A image-quality experiment (-path block|scalar)
//	cache       B2 frames/s vs delay-cache budget sweep (-frames N; always reduced scale)
//	datapath    B3/B10 precision/bandwidth sweep: wide vs int16×f64 vs int16×f32 vs ADC-native int16×i16, plus the small-volume dispatch crossover (always reduced scale)
//	compound    B4 multi-transmit compounding sweep: transmit count × cache budget (always reduced scale)
//	serve       B5 served frames/s + latency vs connection count, shared vs per-session delay budgets (always reduced scale)
//	sched       B6 scheduled vs checkout serving under mixed bulk + interactive load (always reduced scale)
//	wire        B7 transport comparison: legacy f64 POST vs i16 wire frames vs the persistent i16 stream (always reduced scale)
//	resilience  B8 failure-path triplet: drain latency, fault-burst recovery, interactive p99 under overload shed (always reduced scale)
//	cluster     B9 geometry-sharded cluster: aggregate frames/s vs single node at fixed total delay memory, bit-identity through the router (-nodes N)
//	bench       machine-readable perf records (-json writes BENCH_pipeline.json + BENCH_datapath.json + BENCH_compound.json + BENCH_serve.json)
//	all         every text experiment in sequence
//
// Global flags: -reduced runs on the laptop-scale spec; -exhaustive uses
// stride-1 sweeps (minutes at paper scale); -path selects the beamformer's
// delay datapath where one is used; -frames sets the cine length for the
// multi-frame experiments. -cpuprofile/-memprofile write pprof profiles of
// the selected experiment, so kernel iterations need no ad-hoc
// instrumentation.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"

	"ultrabeam/internal/beamform"
	"ultrabeam/internal/core"
	"ultrabeam/internal/experiments"
	"ultrabeam/internal/report"
	"ultrabeam/internal/tablesteer"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	reduced := fs.Bool("reduced", false, "use the laptop-scale spec")
	exhaustive := fs.Bool("exhaustive", false, "stride-1 sweeps (slow)")
	arch := fs.String("arch", "tablesteer", "accuracy target: tablefree|tablesteer")
	out := fs.String("out", "", "CSV output path for figure data (default stdout)")
	theta := fs.Float64("theta", 20, "steering azimuth in degrees (figure3c/3d)")
	phi := fs.Float64("phi", 10, "steering elevation in degrees (figure3c/3d)")
	depth := fs.Int("depth", 500, "depth index (figure3d)")
	n := fs.Int("n", 2_000_000, "Monte Carlo samples (fixedpoint)")
	path := fs.String("path", "block", "beamformer delay datapath: block|scalar")
	frames := fs.Int("frames", 8, "cine length for cache/bench experiments")
	nodes := fs.Int("nodes", 3, "cluster: backend node count")
	jsonOut := fs.Bool("json", false, "bench: write JSON records instead of tables")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the experiment to this path")
	memprofile := fs.String("memprofile", "", "write a heap profile after the experiment to this path")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}
	spec := core.PaperSpec()
	if *reduced {
		spec = core.ReducedSpec()
	}
	opt := tablesteer.SweepOptions{StrideTheta: 8, StridePhi: 8, StrideDepth: 8,
		StrideElem: 9, Parallel: true}
	if *exhaustive {
		opt = tablesteer.SweepOptions{StrideTheta: 1, StridePhi: 1, StrideDepth: 1,
			StrideElem: 1, Parallel: true}
	}
	stopProfiles, err := startProfiles(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "usbeam:", err)
		os.Exit(1)
	}

	switch cmd {
	case "specs":
		err = experiments.SpecsTable(spec).Render(os.Stdout)
	case "orders":
		err = experiments.SweepOrders(spec).Table().Render(os.Stdout)
	case "figure2":
		r := experiments.Figure2(spec, 4096)
		fmt.Printf("PWL sqrt: %d segments (paper ~70), δ=%.2f, max err %.4f samples\n",
			r.Segments, r.Delta, r.MaxErr)
		err = writeSeries(*out, r.Profile)
	case "figure3a":
		r := experiments.Figure3a(spec, 5, 25)
		fmt.Printf("reference table: %d entries (%.1f Mb), %d pruned by directivity (%.1f%%)\n",
			r.Entries, float64(r.StorageBits)/1e6, r.Pruned,
			100*float64(r.Pruned)/float64(r.Entries))
		err = writeDots(*out, r.Dots)
	case "figure3c":
		plane, it, ip := experiments.Figure3c(spec, *theta, *phi)
		fmt.Printf("correction plane at grid (θ=%d, φ=%d)\n", it, ip)
		err = writeGrid(*out, plane, spec.ElemX)
	case "figure3d":
		slice := experiments.Figure3d(spec, *theta, *phi, clampDepth(*depth, spec))
		qx := (spec.ElemX + 1) / 2
		err = writeGrid(*out, slice, qx)
	case "accuracy":
		switch *arch {
		case "tablefree":
			err = experiments.TableFreeAccuracy(spec, 8, 12).Table().Render(os.Stdout)
		default:
			err = experiments.SteerAccuracy(spec, opt).Table().Render(os.Stdout)
		}
	case "fixedpoint":
		err = experiments.FixedPoint(*n, 1).Table().Render(os.Stdout)
	case "storage":
		err = experiments.Storage(spec).Table().Render(os.Stdout)
	case "throughput":
		err = experiments.Throughput(spec).Table().Render(os.Stdout)
	case "bound":
		r := experiments.SteerAccuracy(spec, tablesteer.SweepOptions{
			StrideTheta: 16, StridePhi: 16, StrideDepth: 16, StrideElem: 12, Parallel: true})
		fmt.Printf("Lagrange bound: %.2f µs = %.0f samples (paper: 6.7 µs / 214)\n",
			r.BoundSec*1e6, r.BoundSec*spec.Fs)
	case "block":
		// Scalar sweeps at paper scale take minutes; B1 always runs reduced.
		err = experiments.BlockPath(core.ReducedSpec()).Table().Render(os.Stdout)
	case "quality":
		q := core.ReducedSpec()
		q.FocalTheta, q.FocalPhi, q.FocalDepth = 21, 1, 120
		q.PhiDeg = 0
		q.DepthLambda = 80
		var r experiments.ImageQualityResult
		r, err = experiments.ImageQualityPath(q, 0.02, parsePath(*path))
		if err == nil {
			fmt.Printf("engine datapath: %s\n", parsePath(*path))
			err = r.Table().Render(os.Stdout)
		}
	case "cache":
		// Full-table residency at paper scale is ~1.3 GB/nappe; B2 always
		// runs reduced, like B1.
		var r experiments.FrameCacheResult
		r, err = experiments.FrameCache(core.ReducedSpec(), *frames)
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "datapath":
		// B3 runs reduced like B1/B2: the sweep holds full cache residency
		// per precision, which paper scale cannot materialize.
		var r experiments.DatapathResult
		r, err = experiments.Datapath(core.ReducedSpec(), *frames)
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "compound":
		// B4 runs reduced like B1–B3: the transmit sweep multiplies the
		// working set by the transmit count, which paper scale cannot hold.
		var r experiments.CompoundResult
		r, err = experiments.Compound(core.ReducedSpec(), *frames)
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "serve":
		// B5 runs its own right-sized spec: the sweep starts a live HTTP
		// server per point and streams multi-megabyte RF frames.
		var r experiments.ServeResult
		r, err = experiments.ServeLoad(experiments.ServeSpec(), *frames, []int{1, 2, 4})
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "sched":
		// B6 likewise serves live HTTP on its own right-sized spec:
		// scheduled vs checkout under a mixed bulk + interactive load.
		var r experiments.SchedResult
		r, err = experiments.SchedLoad(experiments.ServeSpec(), *frames)
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "wire":
		// B7 compares the request transports over live loopback: the legacy
		// whole-frame f64 POST against ADC-native i16 wire frames, posted
		// and streamed, on the float32 session.
		var r experiments.WireResult
		r, err = experiments.WireLoad(experiments.ServeSpec(), *frames)
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "resilience":
		// B8 exercises the failure paths over live loopback: graceful
		// drain of a queued backlog, recovery from a fault burst that
		// kills the hot session, and the overload ladder's interactive
		// latency while the bulk lane sheds.
		var r experiments.ResilienceResult
		r, err = experiments.ResilienceLoad(experiments.ServeSpec(), *frames)
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "cluster":
		// B9 shards the B5-scale workload across -nodes in-process
		// backends behind the consistent-hash router, measuring each
		// node-phase through the live router against a direct single-node
		// baseline at the same total delay budget.
		var r experiments.ClusterResult
		r, err = experiments.ClusterLoad(*frames, *nodes)
		if err == nil {
			err = r.Table().Render(os.Stdout)
		}
	case "bench":
		err = runBench(core.ReducedSpec(), *frames, *jsonOut, *out)
	case "all":
		err = runAll(spec, opt)
	default:
		usage()
		os.Exit(2)
	}
	stopProfiles()
	if err != nil {
		fmt.Fprintln(os.Stderr, "usbeam:", err)
		os.Exit(1)
	}
}

// runBench measures the per-PR perf records: the pipeline record
// (BENCH_pipeline.json), the wide-vs-narrow kernel record
// (BENCH_datapath.json), the multi-transmit compounding record
// (BENCH_compound.json) and the serving record (BENCH_serve.json).
// -out overrides only the pipeline path.
func runBench(spec core.SystemSpec, frames int, jsonOut bool, out string) error {
	rec, err := experiments.Bench(spec, frames)
	if err != nil {
		return err
	}
	dp, err := experiments.BenchDatapath(spec, frames)
	if err != nil {
		return err
	}
	cp, err := experiments.BenchCompound(spec, frames)
	if err != nil {
		return err
	}
	sv, err := experiments.BenchServe(frames)
	if err != nil {
		return err
	}
	if !jsonOut {
		for _, t := range []interface{ Render(io.Writer) error }{rec.Table(), dp.Table(), cp.Table(), sv.Table()} {
			if err := t.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	dst := out
	if dst == "" {
		dst = "BENCH_pipeline.json"
	}
	if err := writeJSONFile(dst, rec.WriteJSON); err != nil {
		return err
	}
	fmt.Println("bench record written to", dst)
	if err := writeJSONFile("BENCH_datapath.json", dp.WriteJSON); err != nil {
		return err
	}
	fmt.Println("datapath record written to BENCH_datapath.json")
	if err := writeJSONFile("BENCH_compound.json", cp.WriteJSON); err != nil {
		return err
	}
	fmt.Println("compound record written to BENCH_compound.json")
	if err := writeJSONFile("BENCH_serve.json", sv.WriteJSON); err != nil {
		return err
	}
	fmt.Println("serve record written to BENCH_serve.json")
	return nil
}

func writeJSONFile(path string, write func(io.Writer) error) error {
	f, done, err := openOut(path)
	if err != nil {
		return err
	}
	defer done()
	return write(f)
}

// startProfiles starts a CPU profile and/or arms a heap-profile write; the
// returned stop function flushes both (call it before exiting).
func startProfiles(cpuPath, memPath string) (func(), error) {
	stop := func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintln(os.Stderr, "usbeam: cpu profile written to", cpuPath)
		}
	}
	if memPath == "" {
		return stop, nil
	}
	cpuStop := stop
	return func() {
		cpuStop()
		f, err := os.Create(memPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "usbeam:", err)
			return
		}
		defer f.Close()
		runtime.GC() // materialize final live-heap state
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "usbeam:", err)
			return
		}
		fmt.Fprintln(os.Stderr, "usbeam: heap profile written to", memPath)
	}, nil
}

func runAll(spec core.SystemSpec, opt tablesteer.SweepOptions) error {
	tables := []*report.Table{
		experiments.SpecsTable(spec),
		experiments.SweepOrders(spec).Table(),
		experiments.TableFreeAccuracy(spec, 8, 12).Table(),
		experiments.SteerAccuracy(spec, opt).Table(),
		experiments.FixedPoint(2_000_000, 1).Table(),
		experiments.Storage(spec).Table(),
		experiments.Throughput(spec).Table(),
	}
	for _, t := range tables {
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func parsePath(name string) beamform.Path {
	p, err := beamform.ParsePath(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "usbeam:", err)
		os.Exit(2)
	}
	return p
}

func clampDepth(d int, spec core.SystemSpec) int {
	if d >= spec.FocalDepth {
		return spec.FocalDepth - 1
	}
	if d < 0 {
		return 0
	}
	return d
}

func openOut(path string) (*os.File, func(), error) {
	if path == "" {
		return os.Stdout, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func writeSeries(path string, s report.Series) error {
	f, done, err := openOut(path)
	if err != nil {
		return err
	}
	defer done()
	return report.WriteCSV(f, s)
}

func writeDots(path string, dots [][3]int) error {
	f, done, err := openOut(path)
	if err != nil {
		return err
	}
	defer done()
	if _, err := fmt.Fprintln(f, "qx,qy,depth"); err != nil {
		return err
	}
	for _, d := range dots {
		if _, err := fmt.Fprintf(f, "%d,%d,%d\n", d[0], d[1], d[2]); err != nil {
			return err
		}
	}
	return nil
}

func writeGrid(path string, grid []float64, width int) error {
	f, done, err := openOut(path)
	if err != nil {
		return err
	}
	defer done()
	for i := 0; i < len(grid); i += width {
		end := i + width
		if end > len(grid) {
			end = len(grid)
		}
		for j, v := range grid[i:end] {
			if j > 0 {
				if _, err := fmt.Fprint(f, ","); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprint(f, strconv.FormatFloat(v, 'g', -1, 64)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: usbeam <subcommand> [flags]
subcommands: specs orders figure2 figure3a figure3c figure3d accuracy
             fixedpoint storage throughput bound block quality cache
             datapath compound serve sched wire resilience cluster bench all
flags: -reduced -exhaustive -arch tablefree|tablesteer -out FILE
       -theta DEG -phi DEG -depth N -n SAMPLES -path block|scalar
       -frames N -nodes N -json -cpuprofile FILE -memprofile FILE`)
}
