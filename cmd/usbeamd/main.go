// Command usbeamd is the long-lived beamforming daemon: it owns a
// geometry-keyed pool of warm sessions — every session of one probe
// geometry attached to one shared delay block store — and beamforms binary
// RF frames POSTed to /beamform. See internal/serve.Server for the wire
// protocol, /healthz for liveness and /stats for pool occupancy and
// shared-cache hit rates.
//
// Usage:
//
//	usbeamd [-addr :8642] [-max-sessions N] [-max-queue N]
//	        [-idle-ttl 5m] [-acquire-timeout 10s] [-max-body 256MiB]
//	        [-private-caches]
//
// A quick exchange against a local daemon (see examples/serveclient for a
// programmatic client):
//
//	usbeamd -addr :8642 &
//	go run ./examples/serveclient -addr localhost:8642
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ultrabeam/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	maxSessions := flag.Int("max-sessions", 4, "live warm sessions across all geometries")
	maxQueue := flag.Int("max-queue", 0, "queued acquires before 503 (0 = 4× max-sessions)")
	idleTTL := flag.Duration("idle-ttl", 5*time.Minute, "evict geometries idle this long (0 = never)")
	acquireTimeout := flag.Duration("acquire-timeout", 10*time.Second, "max time a request may queue for a session")
	maxBody := flag.Int64("max-body", 256<<20, "request body byte cap")
	privateCaches := flag.Bool("private-caches", false, "disable delay-store sharing (per-session caches; A/B baseline)")
	flag.Parse()

	pool := serve.NewPool(serve.PoolConfig{
		MaxSessions:   *maxSessions,
		MaxQueue:      *maxQueue,
		IdleTTL:       *idleTTL,
		PrivateCaches: *privateCaches,
	})
	srv, err := serve.NewServer(serve.ServerConfig{
		Pool: pool, MaxBodyBytes: *maxBody, AcquireTimeout: *acquireTimeout,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "usbeamd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("usbeamd: shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Println("usbeamd: shutdown:", err)
		}
	}()
	log.Printf("usbeamd: serving on %s (max %d sessions, idle TTL %s)", *addr, *maxSessions, *idleTTL)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "usbeamd:", err)
		os.Exit(1)
	}
	<-done
	pool.Close()
}
