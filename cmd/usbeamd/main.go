// Command usbeamd is the long-lived beamforming daemon. By default it runs
// the per-geometry frame scheduler: one hot session per warm probe
// geometry, incoming frames queued into priority lanes (interactive jumps
// bulk/cine) and dispatched as fused batches that amortize delay-block
// regeneration across the backlog. -checkout falls back to the PR 5
// checkout pool — a warm session leased per request. See
// internal/serve.Server for the wire protocol, /healthz for liveness and
// /stats for occupancy, lane wait percentiles and shared-cache hit rates.
//
// Usage:
//
//	usbeamd [-addr :8642] [-stream-addr :8643] [-max-geometries N]
//	        [-max-queue N] [-max-batch N] [-core-slots N] [-idle-ttl 5m]
//	        [-acquire-timeout 10s] [-max-body 256MiB] [-drain-timeout 30s]
//	usbeamd -checkout [-max-sessions N] [-max-queue N] [-private-caches] ...
//
// SIGTERM (or interrupt) triggers a graceful drain: /healthz flips to 503
// with drain progress so a router can deroute, new frames are refused with
// Retry-After hints, cine streams get an in-band GOAWAY at their next
// compound boundary, and every frame already queued finishes (bounded by
// -drain-timeout) before the listeners close.
//
// -faults (or the ULTRABEAM_FAULTS environment variable) arms the
// internal/faultpoint chaos schedule — deterministic injected failures for
// resilience testing, never for production.
//
// -stream-addr additionally listens for the persistent cine stream
// transport (scheduler mode only): one TCP connection per probe, wire
// frames in, volumes out, no per-frame HTTP overhead. See
// internal/serve.Server.ServeStream for the protocol.
//
// A quick exchange against a local daemon (see examples/serveclient for a
// programmatic client):
//
//	usbeamd -addr :8642 -stream-addr :8643 &
//	go run ./examples/serveclient -addr localhost:8642 -wire i16
//	go run ./examples/serveclient -stream localhost:8643 -wire i16 -frames 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"ultrabeam/internal/faultpoint"
	"ultrabeam/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8642", "listen address")
	streamAddr := flag.String("stream-addr", "", "also listen for the persistent cine stream transport on this TCP address (scheduler mode only)")
	checkout := flag.Bool("checkout", false, "serve from the checkout pool instead of the frame scheduler")
	maxGeometries := flag.Int("max-geometries", 4, "warm geometries the scheduler keeps hot")
	maxSessions := flag.Int("max-sessions", 4, "checkout mode: live warm sessions across all geometries")
	maxQueue := flag.Int("max-queue", 0, "queued frames before 503 (0 = mode default)")
	maxBatch := flag.Int("max-batch", 4, "frames fused into one scheduler dispatch")
	coreSlots := flag.Int("core-slots", 1, "geometries beamforming concurrently (scheduler turnstile width)")
	idleTTL := flag.Duration("idle-ttl", 5*time.Minute, "evict geometries idle this long (0 = never)")
	acquireTimeout := flag.Duration("acquire-timeout", 10*time.Second, "max time a request may queue for a session")
	maxBody := flag.Int64("max-body", 256<<20, "request body byte cap")
	privateCaches := flag.Bool("private-caches", false, "checkout mode: disable delay-store sharing (per-session caches; A/B baseline)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max time a SIGTERM drain may spend finishing queued frames")
	faults := flag.String("faults", "", "fault-injection schedule (see internal/faultpoint); testing only")
	flag.Parse()

	if *faults != "" {
		if err := faultpoint.Activate(*faults); err != nil {
			fmt.Fprintln(os.Stderr, "usbeamd: -faults:", err)
			os.Exit(1)
		}
		log.Printf("usbeamd: fault injection ARMED (%s) — not for production", *faults)
	} else if err := faultpoint.ActivateFromEnv(); err != nil {
		fmt.Fprintf(os.Stderr, "usbeamd: %s: %v\n", faultpoint.EnvVar, err)
		os.Exit(1)
	} else if faultpoint.Active() {
		log.Printf("usbeamd: fault injection ARMED via %s — not for production", faultpoint.EnvVar)
	}

	var (
		cfg   serve.ServerConfig
		stop  func()
		model string
	)
	if *checkout {
		pool := serve.NewPool(serve.PoolConfig{
			MaxSessions:   *maxSessions,
			MaxQueue:      *maxQueue,
			IdleTTL:       *idleTTL,
			PrivateCaches: *privateCaches,
		})
		cfg.Pool, stop = pool, pool.Close
		model = fmt.Sprintf("checkout pool, max %d sessions", *maxSessions)
	} else {
		sched := serve.NewScheduler(serve.SchedulerConfig{
			MaxGeometries: *maxGeometries,
			MaxQueue:      *maxQueue,
			MaxBatch:      *maxBatch,
			CoreSlots:     *coreSlots,
			IdleTTL:       *idleTTL,
		})
		cfg.Scheduler, stop = sched, sched.Close
		model = fmt.Sprintf("frame scheduler, max %d geometries, batch %d", *maxGeometries, *maxBatch)
	}
	cfg.MaxBodyBytes, cfg.AcquireTimeout = *maxBody, *acquireTimeout
	srv, err := serve.NewServer(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "usbeamd:", err)
		os.Exit(1)
	}
	hs := &http.Server{Addr: *addr, Handler: srv}

	// The stream transport shares the scheduler with HTTP: same lanes, same
	// fused batches, same /stats counters.
	streamCtx, streamCancel := context.WithCancel(context.Background())
	var streamWG sync.WaitGroup
	var streamLn net.Listener
	if *streamAddr != "" {
		if *checkout {
			fmt.Fprintln(os.Stderr, "usbeamd: -stream-addr needs scheduler mode (drop -checkout)")
			os.Exit(1)
		}
		streamLn, err = net.Listen("tcp", *streamAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "usbeamd:", err)
			os.Exit(1)
		}
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			if err := srv.ServeStream(streamCtx, streamLn); err != nil {
				log.Println("usbeamd: stream:", err)
			}
		}()
		log.Printf("usbeamd: cine stream transport on %s", *streamAddr)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("usbeamd: draining (healthz now 503; queued frames finishing)")
		// Drain before anything closes: new work is refused with GOAWAY /
		// Retry-After, /healthz flips to 503 so a router deroutes, and every
		// frame already queued finishes. Stream connections observe the
		// drain at their next compound boundary and say goodbye in-band —
		// only then do the listeners come down.
		drainCtx, drainCancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Shutdown(drainCtx); err != nil {
			log.Println("usbeamd: drain:", err)
		} else {
			log.Println("usbeamd: drained clean")
		}
		drainCancel()
		if streamLn != nil {
			streamCancel()
			streamLn.Close()
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			log.Println("usbeamd: shutdown:", err)
		}
	}()
	log.Printf("usbeamd: serving on %s (%s, idle TTL %s)", *addr, model, *idleTTL)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "usbeamd:", err)
		os.Exit(1)
	}
	<-done
	streamCancel()
	streamWG.Wait()
	stop()
}
