// Command beamsim runs the full imaging pipeline at reduced scale: phantom
// → per-element RF echoes → delay-and-sum beamforming through a selected
// delay architecture → PSF metrics and an optional B-mode PGM image.
//
// Usage:
//
//	beamsim [-provider exact|tablefree|tablesteer] [-phantom point|grid|speckle]
//	        [-depth 0.02] [-out image.pgm] [-compare] [-path block|scalar]
//	        [-precision float64|float32|wide] [-frames N] [-cache-budget BYTES]
//	        [-transmits N]
//
// -compare beamforms through all three providers and reports similarity,
// the §II-A image-quality experiment. -path selects the engine datapath:
// the default streaming block path (nappe-granular FillNappe) or the scalar
// per-voxel×element reference; both image identically.
//
// -precision selects the session kernel width: float64 (int16 delay blocks,
// float64 echo — bit-identical golden model, the default), float32 (int16
// delay blocks, float32 echo through the unrolled kernel), or wide (the
// pre-narrowing float64 A/B datapath, which pairs with a float64 cache).
//
// -frames > 1 beamforms a static cine through a persistent Session and
// reports sustained frames/s. -cache-budget bounds the nappe-block delay
// cache that amortizes generation across frames: 0 disables caching,
// negative means unlimited (full residency, the default).
//
// -transmits N compounds N steered diverging-wave insonifications per
// frame (virtual sources behind the array): echoes are synthesized once
// per transmit and the session coherently sums the N beamformations —
// the delay cache is then keyed by (transmit, nappe) and its budget is
// shared across the set.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ultrabeam/internal/beamform"
	"ultrabeam/internal/core"
	"ultrabeam/internal/delay"
	"ultrabeam/internal/dsp"
	"ultrabeam/internal/experiments"
	"ultrabeam/internal/geom"
	"ultrabeam/internal/rf"
	"ultrabeam/internal/scan"
	"ultrabeam/internal/xdcr"
)

func main() {
	provider := flag.String("provider", "exact", "delay architecture: exact|tablefree|tablesteer")
	phantom := flag.String("phantom", "point", "phantom: point|grid|speckle")
	depth := flag.Float64("depth", 0.02, "target depth in meters")
	out := flag.String("out", "", "write a B-mode PGM slice to this path")
	compare := flag.Bool("compare", false, "beamform with all providers and compare")
	path := flag.String("path", "block", "delay datapath: block|scalar")
	precision := flag.String("precision", "float64", "session kernel width: float64|float32|wide")
	frames := flag.Int("frames", 1, "cine frames to beamform through one session")
	cacheBudget := flag.Int64("cache-budget", -1, "delay-cache bytes (0 = uncached, <0 = full residency)")
	transmits := flag.Int("transmits", 1, "steered insonifications compounded per frame")
	flag.Parse()

	spec := core.ReducedSpec()
	spec.FocalTheta, spec.FocalPhi, spec.FocalDepth = 41, 1, 200
	spec.PhiDeg = 0
	spec.DepthLambda = 100 // 38.5 mm imaging depth

	ph := buildPhantom(*phantom, *depth)
	eng := spec.NewBeamformer(xdcr.Hann, scan.NappeOrder)
	eng.Cfg.Path = parsePath(*path)
	eng.Cfg.Precision = parsePrecision(*precision)

	// The default-origin echo set serves every mode except the compound
	// cine, which synthesizes one set per transmit instead.
	synthesize := func() []rf.EchoBuffer {
		bufs, err := rf.Synthesize(rf.Config{
			Arr: spec.Array(), Conv: spec.Converter(), Pulse: rf.NewPulse(spec.Fc, spec.B),
			BufSamples: spec.EchoBufferSamples(),
		}, ph)
		check(err)
		return bufs
	}

	if *compare {
		if *frames > 1 || *transmits > 1 {
			fmt.Fprintln(os.Stderr, "beamsim: -compare is a single-frame single-transmit experiment; drop -frames/-transmits")
			os.Exit(2)
		}
		runCompare(spec, eng, synthesize())
		return
	}

	p := selectProvider(spec, *provider)
	var vol *beamform.Volume
	switch {
	case *transmits > 1:
		if eng.Cfg.Path != beamform.BlockPath {
			fmt.Fprintln(os.Stderr, "beamsim: -transmits always streams the block datapath; drop -path", *path)
			os.Exit(2)
		}
		vol = runCompound(spec, p, ph, *transmits, *frames, *cacheBudget, eng.Cfg.Precision)
	case *frames > 1:
		if eng.Cfg.Path != beamform.BlockPath {
			fmt.Fprintln(os.Stderr, "beamsim: -frames > 1 always streams the block datapath; drop -path", *path)
			os.Exit(2)
		}
		vol = runCine(spec, p, synthesize(), *frames, *cacheBudget, eng.Cfg.Precision)
	default:
		var err error
		vol, err = eng.Beamform(p, synthesize())
		check(err)
	}
	m, err := beamform.MeasurePSF(vol, spec.Converter(), spec.Fc)
	check(err)
	fmt.Printf("provider %s: peak at θ-index %d, depth %.2f mm; axial FWHM %.2f mm, lateral FWHM %.2f°\n",
		p.Name(), m.PeakIndex.Theta, spec.Volume().Depth.At(m.PeakIndex.Depth)*1e3,
		m.AxialFWHMmm, m.LateralFWHMdeg)
	if *out != "" {
		check(writePGM(*out, vol))
		fmt.Println("B-mode slice written to", *out)
	}
}

func buildPhantom(kind string, depth float64) rf.Phantom {
	switch kind {
	case "grid":
		return rf.GridPhantom([]geom.Vec3{
			{Z: depth * 0.6}, {Z: depth}, {Z: depth * 1.4},
			{X: depth * 0.2, Z: depth}, {X: -depth * 0.2, Z: depth},
		})
	case "speckle":
		return rf.SpecklePhantom(400,
			geom.Vec3{X: -0.008, Y: -0.0002, Z: depth * 0.5},
			geom.Vec3{X: 0.008, Y: 0.0002, Z: depth * 1.5}, 42)
	default:
		return rf.PointPhantom(geom.Vec3{Z: depth})
	}
}

// runCine beamforms a static cine through one persistent session (cached
// unless budget is 0 — the cine always streams the block datapath) and
// reports sustained frames/s plus cache effectiveness. A wide-precision
// cine gets the matching float64 cache so residency still serves it. It
// returns the last beamformed frame for the usual PSF report and -out
// image.
func runCine(spec core.SystemSpec, p delay.Provider, bufs []rf.EchoBuffer, frames int, budget int64, prec beamform.Precision) *beamform.Volume {
	sess, cache, err := spec.NewSessionConfig(core.SessionConfig{
		Window: xdcr.Hann, Precision: prec,
		Cached: budget != 0, CacheBudget: budget,
		WideCache: prec == beamform.PrecisionWide,
	}, p)
	check(err)
	defer sess.Close()
	out := &beamform.Volume{Vol: spec.Volume(), Data: make([]float64, spec.Points())}
	start := time.Now()
	for i := 0; i < frames; i++ {
		check(sess.BeamformInto(out, bufs))
	}
	elapsed := time.Since(start)
	fmt.Printf("%d frames in %v: %.2f frames/s (%d workers, provider %s)\n",
		frames, elapsed.Round(time.Millisecond),
		float64(frames)/elapsed.Seconds(), sess.Workers(), p.Name())
	if cache != nil {
		fmt.Println("delay cache:", cache.Stats())
	}
	return out
}

// runCompound beamforms a compound cine: n steered diverging-wave
// transmits per frame (virtual sources half an aperture behind the array,
// laterally spread over half an aperture), echoes synthesized once per
// transmit, one persistent session summing the insonifications coherently.
// It reports sustained compound frames/s and cache effectiveness, and
// returns the last compounded frame.
func runCompound(spec core.SystemSpec, p delay.Provider, ph rf.Phantom, n, frames int, budget int64, prec beamform.Precision) *beamform.Volume {
	txs := delay.SteeredTransmits(n, spec.Aperture()/2, spec.Aperture()/2)
	txBufs, err := experiments.CompoundEchoes(spec, txs, ph)
	check(err)
	sess, cache, err := spec.NewSessionConfig(core.SessionConfig{
		Window: xdcr.Hann, Precision: prec,
		Cached: budget != 0, CacheBudget: budget,
		WideCache: prec == beamform.PrecisionWide,
		Transmits: txs,
	}, p)
	check(err)
	defer sess.Close()
	out := &beamform.Volume{Vol: spec.Volume(), Data: make([]float64, spec.Points())}
	start := time.Now()
	for i := 0; i < frames; i++ {
		check(sess.BeamformCompoundInto(out, txBufs))
	}
	elapsed := time.Since(start)
	fmt.Printf("%d compound frames (%d transmits each) in %v: %.2f frames/s (%d workers, provider %s)\n",
		frames, n, elapsed.Round(time.Millisecond),
		float64(frames)/elapsed.Seconds(), sess.Workers(), p.Name())
	if cache != nil {
		fmt.Println("delay cache:", cache.Stats())
	}
	return out
}

func parsePath(name string) beamform.Path {
	p, err := beamform.ParsePath(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beamsim:", err)
		os.Exit(2)
	}
	return p
}

func parsePrecision(name string) beamform.Precision {
	p, err := beamform.ParsePrecision(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "beamsim:", err)
		os.Exit(2)
	}
	return p
}

func selectProvider(spec core.SystemSpec, name string) delay.Provider {
	switch name {
	case "tablefree":
		p := spec.NewTableFree()
		p.UseFixed = true
		return p
	case "tablesteer":
		p := spec.NewTableSteer(18)
		p.UseFixed = true
		return p
	default:
		return spec.NewExact()
	}
}

func runCompare(spec core.SystemSpec, eng *beamform.Engine, bufs []rf.EchoBuffer) {
	exact, err := eng.Beamform(spec.NewExact(), bufs)
	check(err)
	fmt.Println("§II-A image-quality comparison (similarity vs exact delays):")
	for _, name := range []string{"tablefree", "tablesteer"} {
		vol, err := eng.Beamform(selectProvider(spec, name), bufs)
		check(err)
		sim, err := beamform.Similarity(exact, vol)
		check(err)
		psr, err := beamform.PeakSignalRatio(exact, vol)
		check(err)
		fmt.Printf("  %-11s similarity %.4f, difference %.1f dB below peak\n", name, sim, psr)
	}
}

// writePGM renders the θ×depth B-mode slice (φ index 0) log-compressed to
// 8-bit grayscale.
func writePGM(path string, vol *beamform.Volume) error {
	nTheta, nDepth := vol.Vol.Theta.N, vol.Vol.Depth.N
	env := make([]float64, 0, nTheta*nDepth)
	for id := 0; id < nDepth; id++ {
		for it := 0; it < nTheta; it++ {
			v := vol.At(scan.Index{Theta: it, Phi: 0, Depth: id})
			if v < 0 {
				v = -v
			}
			env = append(env, v)
		}
	}
	const dynRange = 50.0
	db := dsp.LogCompress(env, dynRange)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", nTheta, nDepth); err != nil {
		return err
	}
	pix := make([]byte, len(db))
	for i, v := range db {
		pix[i] = byte((v + dynRange) / dynRange * 255)
	}
	_, err = f.Write(pix)
	return err
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "beamsim:", err)
		os.Exit(1)
	}
}
