// Command usbeamrouter fronts a cluster of usbeamd nodes with a
// consistent-hash router: each request's geometry fingerprint picks one
// owner, so every node keeps the warm delay store for its own geometries
// only and the fleet's cache budget is additive instead of replicated.
// See internal/cluster for the design.
//
// Usage:
//
//	usbeamrouter -backends host:8642+host:8643,host2:8642+host2:8643 \
//	             [-addr :8640] [-stream-addr :8641] \
//	             [-health-interval 1s] [-health-timeout 2s] \
//	             [-vnodes 64] [-retries 5] [-max-body 256MiB]
//
// Each -backends entry is an HTTP address, optionally "+stream-address"
// for the persistent cine transport. Membership follows each backend's
// own /healthz: a node answering the 503 drain contract leaves the ring
// immediately (its geometries re-shard and get prewarmed on their new
// owners via residency plans) but keeps serving /v1/plans until it exits.
//
// The router exposes the same /v1 surface as a single daemon — /v1/beamform
// proxied to the owner with the response (status, Retry-After, everything)
// copied through verbatim, /v1/healthz for the cluster, /v1/stats
// aggregating router counters with every node's own stats — plus the cine
// stream transport on -stream-addr, re-homed to the next owner mid-stream
// if a backend drains or dies.
//
// SIGTERM closes the listeners; in-flight requests and streams finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"ultrabeam/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8640", "router HTTP listen address")
	streamAddr := flag.String("stream-addr", "", "also relay the persistent cine stream transport on this TCP address")
	backends := flag.String("backends", "", "comma-separated backend list, each http-addr[+stream-addr]")
	healthInterval := flag.Duration("health-interval", time.Second, "backend /healthz probe period")
	healthTimeout := flag.Duration("health-timeout", 2*time.Second, "per-probe (and backend dial) timeout")
	vnodes := flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per backend on the hash ring")
	retries := flag.Int("retries", 5, "consecutive re-home attempts before a relayed stream gives up")
	maxBody := flag.Int64("max-body", 256<<20, "request body byte cap")
	flag.Parse()

	bes, err := parseBackends(*backends)
	if err != nil {
		fmt.Fprintln(os.Stderr, "usbeamrouter:", err)
		os.Exit(1)
	}
	if len(bes) == 0 {
		fmt.Fprintln(os.Stderr, "usbeamrouter: -backends is required (host:port[+stream-host:port],...)")
		os.Exit(1)
	}

	r := cluster.New(cluster.Config{
		Backends:       bes,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		VNodes:         *vnodes,
		Retries:        *retries,
		MaxBodyBytes:   *maxBody,
		Logf:           log.Printf,
	})
	defer r.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r.CheckNow(ctx) // first ring before the listeners open
	go r.Run(ctx)

	hs := &http.Server{Addr: *addr, Handler: r.Handler()}

	var streamWG sync.WaitGroup
	var streamLn net.Listener
	if *streamAddr != "" {
		streamLn, err = net.Listen("tcp", *streamAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "usbeamrouter:", err)
			os.Exit(1)
		}
		streamWG.Add(1)
		go func() {
			defer streamWG.Done()
			if err := r.ServeStream(ctx, streamLn); err != nil {
				log.Println("usbeamrouter: stream:", err)
			}
		}()
		log.Printf("usbeamrouter: cine stream relay on %s", *streamAddr)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		<-sig
		log.Println("usbeamrouter: shutting down")
		if streamLn != nil {
			streamLn.Close()
		}
		sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer scancel()
		if err := hs.Shutdown(sctx); err != nil {
			log.Println("usbeamrouter: shutdown:", err)
		}
	}()

	for _, be := range bes {
		if be.StreamAddr != "" {
			log.Printf("usbeamrouter: backend %s (stream %s)", be.Addr, be.StreamAddr)
		} else {
			log.Printf("usbeamrouter: backend %s", be.Addr)
		}
	}
	log.Printf("usbeamrouter: routing on %s across %d backends (probe every %s)", *addr, len(bes), *healthInterval)
	if err := hs.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "usbeamrouter:", err)
		os.Exit(1)
	}
	<-done
	cancel()
	streamWG.Wait()
}

// parseBackends splits "http-addr[+stream-addr],..." into Backend entries.
func parseBackends(s string) ([]cluster.Backend, error) {
	var out []cluster.Backend
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		be := cluster.Backend{Addr: part}
		if i := strings.IndexByte(part, '+'); i >= 0 {
			be.Addr, be.StreamAddr = part[:i], part[i+1:]
			if be.Addr == "" || be.StreamAddr == "" {
				return nil, fmt.Errorf("backend %q: want http-addr+stream-addr", part)
			}
		}
		out = append(out, be)
	}
	return out, nil
}
