package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func rec(v float64) map[string]any {
	return map[string]any{"rate_a": v, "rate_b": 2 * v, "not_a_number": "x"}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	lines, err := compare(rec(10), rec(8), []string{"rate_a", "rate_b"}, 0.30)
	if err != nil {
		t.Fatalf("20%% drop within 30%% tolerance must pass: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 report lines, got %d", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "ok") {
			t.Errorf("line not ok: %s", l)
		}
	}
}

func TestCompareFailsBeyondTolerance(t *testing.T) {
	lines, err := compare(rec(10), rec(6), []string{"rate_a"}, 0.30)
	if err == nil {
		t.Fatal("40% drop must fail a 30% gate")
	}
	if !strings.Contains(err.Error(), "rate_a") {
		t.Errorf("error must name the field: %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "REGRESSED") {
		t.Errorf("report must mark the regression: %v", lines)
	}
}

func TestCompareImprovementAlwaysPasses(t *testing.T) {
	if _, err := compare(rec(10), rec(100), []string{"rate_a", "rate_b"}, 0.30); err != nil {
		t.Fatalf("improvements must pass: %v", err)
	}
}

func TestCompareSchemaDriftIsAnError(t *testing.T) {
	if _, err := compare(rec(10), rec(10), []string{"missing_field"}, 0.30); err == nil {
		t.Error("missing field must fail, not silently pass")
	}
	if _, err := compare(rec(10), rec(10), []string{"not_a_number"}, 0.30); err == nil {
		t.Error("non-numeric field must fail")
	}
	if _, err := compare(map[string]any{"rate_a": 0.0}, rec(10), []string{"rate_a"}, 0.30); err == nil {
		t.Error("non-positive baseline must fail")
	}
}

func TestFloorsAbsoluteGate(t *testing.T) {
	floors, err := parseFloors("rate_a=8, rate_b=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(floors) != 2 || floors[0].min != 8 || floors[1].field != "rate_b" {
		t.Fatalf("parsed %+v", floors)
	}
	if _, err := checkFloors(rec(10), floors); err != nil {
		t.Fatalf("10 and 20 clear floors 8 and 5: %v", err)
	}
	lines, err := checkFloors(rec(3), floors) // rate_a=3 < 8, rate_b=6 > 5
	if err == nil || !strings.Contains(err.Error(), "rate_a") {
		t.Fatalf("3 must miss the 8 floor: %v", err)
	}
	if !strings.Contains(lines[0], "BELOW FLOOR") {
		t.Errorf("report must mark the miss: %v", lines)
	}
	if _, err := checkFloors(rec(10), []floor{{field: "missing", min: 1}}); err == nil {
		t.Error("missing floor field must fail, not silently pass")
	}
	if _, err := parseFloors("oops"); err == nil {
		t.Error("malformed -min entry must fail")
	}
	// Partial parses must fail loudly, not silently weaken the floor.
	for _, bad := range []string{"rate_a=6O", "rate_a=60dB", "rate_a="} {
		if _, err := parseFloors(bad); err == nil {
			t.Errorf("%q must fail, not partially parse", bad)
		}
	}
}

func TestCompareSkipsEmptyFieldNames(t *testing.T) {
	lines, err := compare(rec(10), rec(10), []string{"rate_a", "", " rate_b "}, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("blank field entries must be skipped, got %d lines", len(lines))
	}
}

// writeRecord drops a JSON record into dir and returns its path.
func writeRecord(t *testing.T, dir, name string, m map[string]any) string {
	t.Helper()
	data, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestGateMissingBaselineWarnsAndSkips is the new-record bootstrap path:
// a baseline that does not exist yet must not fail the build — the
// relative gates are skipped with a warning while the absolute floors
// still run against the fresh record.
func TestGateMissingBaselineWarnsAndSkips(t *testing.T) {
	dir := t.TempDir()
	fresh := writeRecord(t, dir, "fresh.json", rec(10))
	missing := filepath.Join(dir, "BENCH_not_yet.json")

	var out, errw strings.Builder
	if code := gate(missing, fresh, []string{"rate_a"}, nil, 0.30, "", "", &out, &errw); code != 0 {
		t.Fatalf("missing baseline must skip, got exit %d (stderr: %s)", code, errw.String())
	}
	if !strings.Contains(errw.String(), "does not exist yet") {
		t.Errorf("missing baseline must warn, got: %q", errw.String())
	}
	if strings.Contains(out.String(), "rate_a") {
		t.Errorf("relative gates must be skipped, got: %q", out.String())
	}

	// Floors still run against the fresh record — and still have teeth.
	out.Reset()
	errw.Reset()
	if code := gate(missing, fresh, nil, nil, 0.30, "rate_a=5", "", &out, &errw); code != 0 {
		t.Fatalf("passing floor with missing baseline: exit %d", code)
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("floor report missing: %q", out.String())
	}
	if code := gate(missing, fresh, nil, nil, 0.30, "rate_a=50", "", &out, &errw); code != 1 {
		t.Errorf("failing floor must still fail with a missing baseline, got exit %d", code)
	}

	// A baseline that exists but is unreadable garbage stays a hard error.
	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := gate(garbage, fresh, []string{"rate_a"}, nil, 0.30, "", "", &out, &errw); code != 2 {
		t.Errorf("corrupt baseline must exit 2, got %d", code)
	}

	// And a present baseline still gates: a collapse fails.
	baseline := writeRecord(t, dir, "baseline.json", rec(100))
	if code := gate(baseline, fresh, []string{"rate_a"}, nil, 0.30, "", "", &out, &errw); code != 1 {
		t.Errorf("regression with present baseline must exit 1, got %d", code)
	}
}

func TestCompareLatLowerIsBetter(t *testing.T) {
	base := map[string]any{"p99_ms": 100.0}
	// 20% slower passes a 30% gate; 40% slower fails; faster always passes.
	if _, err := compareLat(base, map[string]any{"p99_ms": 120.0}, []string{"p99_ms"}, 0.30); err != nil {
		t.Errorf("20%% latency growth within 30%% tolerance must pass: %v", err)
	}
	lines, err := compareLat(base, map[string]any{"p99_ms": 140.0}, []string{"p99_ms"}, 0.30)
	if err == nil || !strings.Contains(err.Error(), "p99_ms") {
		t.Errorf("40%% latency growth must fail and name the field: %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "REGRESSED") {
		t.Errorf("report must mark the regression: %v", lines)
	}
	if _, err := compareLat(base, map[string]any{"p99_ms": 10.0}, []string{"p99_ms"}, 0.30); err != nil {
		t.Errorf("a latency improvement must pass: %v", err)
	}
	// Schema drift stays loud: missing fields and non-positive baselines.
	if _, err := compareLat(base, base, []string{"missing"}, 0.30); err == nil {
		t.Error("missing latency field must fail")
	}
	if _, err := compareLat(map[string]any{"p99_ms": 0.0}, base, []string{"p99_ms"}, 0.30); err == nil {
		t.Error("zero baseline latency must fail, not silently pass")
	}
}

func TestCeilingsAbsoluteGate(t *testing.T) {
	fresh := map[string]any{"ratio": 0.6}
	ceilings, err := parseFloors("ratio=1.0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := checkCeilings(fresh, ceilings); err != nil {
		t.Errorf("0.6 under a 1.0 ceiling must pass: %v", err)
	}
	lines, err := checkCeilings(map[string]any{"ratio": 1.4}, ceilings)
	if err == nil || !strings.Contains(err.Error(), "ratio") {
		t.Errorf("1.4 must breach the 1.0 ceiling: %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "ABOVE CEILING") {
		t.Errorf("report must mark the breach: %v", lines)
	}
	if _, err := checkCeilings(fresh, []floor{{field: "missing", min: 1}}); err == nil {
		t.Error("missing ceiling field must fail, not silently pass")
	}
}

// TestGateLatAndMaxEndToEnd runs the full gate with the new flags wired:
// latency fields against a present baseline, a ceiling against the fresh
// record, and the missing-baseline skip applying to -lat but not -max.
func TestGateLatAndMaxEndToEnd(t *testing.T) {
	dir := t.TempDir()
	base := writeRecord(t, dir, "base.json", map[string]any{"fps": 10.0, "p99_ms": 100.0, "ratio": 0.5})
	ok := writeRecord(t, dir, "ok.json", map[string]any{"fps": 11.0, "p99_ms": 110.0, "ratio": 0.6})
	slow := writeRecord(t, dir, "slow.json", map[string]any{"fps": 11.0, "p99_ms": 500.0, "ratio": 1.8})

	var out, errw strings.Builder
	if code := gate(base, ok, []string{"fps"}, []string{"p99_ms"}, 0.30, "", "ratio=1.0", &out, &errw); code != 0 {
		t.Fatalf("healthy record must pass: exit %d (stderr %s)", code, errw.String())
	}
	if code := gate(base, slow, nil, []string{"p99_ms"}, 0.30, "", "", &out, &errw); code != 1 {
		t.Errorf("5× latency must fail -lat: exit %d", code)
	}
	if code := gate(base, slow, nil, nil, 0.30, "", "ratio=1.0", &out, &errw); code != 1 {
		t.Errorf("ratio 1.8 must fail -max ratio=1.0: exit %d", code)
	}
	missing := filepath.Join(dir, "nope.json")
	if code := gate(missing, slow, nil, []string{"p99_ms"}, 0.30, "", "", &out, &errw); code != 0 {
		t.Errorf("-lat must skip on a missing baseline: exit %d", code)
	}
	if code := gate(missing, slow, nil, nil, 0.30, "", "ratio=1.0", &out, &errw); code != 1 {
		t.Errorf("-max must still gate on a missing baseline: exit %d", code)
	}
}
