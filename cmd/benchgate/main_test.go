package main

import (
	"strings"
	"testing"
)

func rec(v float64) map[string]any {
	return map[string]any{"rate_a": v, "rate_b": 2 * v, "not_a_number": "x"}
}

func TestComparePassesWithinTolerance(t *testing.T) {
	lines, err := compare(rec(10), rec(8), []string{"rate_a", "rate_b"}, 0.30)
	if err != nil {
		t.Fatalf("20%% drop within 30%% tolerance must pass: %v", err)
	}
	if len(lines) != 2 {
		t.Fatalf("want 2 report lines, got %d", len(lines))
	}
	for _, l := range lines {
		if !strings.Contains(l, "ok") {
			t.Errorf("line not ok: %s", l)
		}
	}
}

func TestCompareFailsBeyondTolerance(t *testing.T) {
	lines, err := compare(rec(10), rec(6), []string{"rate_a"}, 0.30)
	if err == nil {
		t.Fatal("40% drop must fail a 30% gate")
	}
	if !strings.Contains(err.Error(), "rate_a") {
		t.Errorf("error must name the field: %v", err)
	}
	if len(lines) != 1 || !strings.Contains(lines[0], "REGRESSED") {
		t.Errorf("report must mark the regression: %v", lines)
	}
}

func TestCompareImprovementAlwaysPasses(t *testing.T) {
	if _, err := compare(rec(10), rec(100), []string{"rate_a", "rate_b"}, 0.30); err != nil {
		t.Fatalf("improvements must pass: %v", err)
	}
}

func TestCompareSchemaDriftIsAnError(t *testing.T) {
	if _, err := compare(rec(10), rec(10), []string{"missing_field"}, 0.30); err == nil {
		t.Error("missing field must fail, not silently pass")
	}
	if _, err := compare(rec(10), rec(10), []string{"not_a_number"}, 0.30); err == nil {
		t.Error("non-numeric field must fail")
	}
	if _, err := compare(map[string]any{"rate_a": 0.0}, rec(10), []string{"rate_a"}, 0.30); err == nil {
		t.Error("non-positive baseline must fail")
	}
}

func TestFloorsAbsoluteGate(t *testing.T) {
	floors, err := parseFloors("rate_a=8, rate_b=5")
	if err != nil {
		t.Fatal(err)
	}
	if len(floors) != 2 || floors[0].min != 8 || floors[1].field != "rate_b" {
		t.Fatalf("parsed %+v", floors)
	}
	if _, err := checkFloors(rec(10), floors); err != nil {
		t.Fatalf("10 and 20 clear floors 8 and 5: %v", err)
	}
	lines, err := checkFloors(rec(3), floors) // rate_a=3 < 8, rate_b=6 > 5
	if err == nil || !strings.Contains(err.Error(), "rate_a") {
		t.Fatalf("3 must miss the 8 floor: %v", err)
	}
	if !strings.Contains(lines[0], "BELOW FLOOR") {
		t.Errorf("report must mark the miss: %v", lines)
	}
	if _, err := checkFloors(rec(10), []floor{{field: "missing", min: 1}}); err == nil {
		t.Error("missing floor field must fail, not silently pass")
	}
	if _, err := parseFloors("oops"); err == nil {
		t.Error("malformed -min entry must fail")
	}
	// Partial parses must fail loudly, not silently weaken the floor.
	for _, bad := range []string{"rate_a=6O", "rate_a=60dB", "rate_a="} {
		if _, err := parseFloors(bad); err == nil {
			t.Errorf("%q must fail, not partially parse", bad)
		}
	}
}

func TestCompareSkipsEmptyFieldNames(t *testing.T) {
	lines, err := compare(rec(10), rec(10), []string{"rate_a", "", " rate_b "}, 0.30)
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("blank field entries must be skipped, got %d lines", len(lines))
	}
}
