// Command benchgate compares a freshly measured bench JSON record against a
// committed baseline and fails on perf regressions beyond a tolerance. It
// is the CI teeth behind the BENCH_*.json acceptance records: the bench
// jobs regenerate each record on the runner and benchgate rejects the build
// when a gated rate fell more than -tol below the committed trajectory.
//
// Usage:
//
//	benchgate -baseline BENCH_pipeline.json -fresh fresh.json \
//	          -fields uncached_frames_per_sec,cached_frames_per_sec [-tol 0.30] \
//	          [-lat p99_ms] [-min float32_psnr_db=60] [-max p99_ratio=1.0]
//
// -fields names top-level JSON numbers (rates: higher is better) gated
// RELATIVE to the baseline. The tolerance is generous by design — CI
// runners are noisy and differ from the machines that committed the
// baselines — so only collapses, not jitter, stop the build. -lat names
// fields where LOWER is better (latencies): the fresh value must stay
// below baseline·(1+tol). -min names field=value pairs gated against an
// ABSOLUTE floor in the fresh record alone: the right shape for log-scale
// metrics like a PSNR, where "70% of 186 dB" would still tolerate a
// near-total fidelity collapse. -max is the mirror-image absolute
// ceiling, for fields like a latency ratio that must stay below a design
// bound. Exit status: 0 pass, 1 regression, 2 usage.
//
// A -baseline path that does not exist is a warning, not an error: the
// relative gates are skipped (the -min floors still run against the fresh
// record). This is what lets a brand-new record land in the same PR that
// adds its gate — the first CI run has no committed baseline to compare
// against, and a hard failure would make every new record a two-PR dance.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"strconv"
	"strings"
)

func main() {
	baseline := flag.String("baseline", "", "committed baseline JSON record")
	fresh := flag.String("fresh", "", "freshly measured JSON record")
	fields := flag.String("fields", "", "comma-separated top-level numeric fields gated relative to the baseline (higher is better)")
	lats := flag.String("lat", "", "comma-separated top-level numeric fields gated relative to the baseline where LOWER is better (latencies)")
	tol := flag.Float64("tol", 0.30, "allowed fractional regression before failing")
	mins := flag.String("min", "", "comma-separated field=value absolute floors checked against the fresh record")
	maxs := flag.String("max", "", "comma-separated field=value absolute ceilings checked against the fresh record")
	flag.Parse()
	if *baseline == "" || *fresh == "" || (*fields == "" && *lats == "" && *mins == "" && *maxs == "") {
		flag.Usage()
		os.Exit(2)
	}
	split := func(s string) []string {
		if s == "" {
			return nil
		}
		return strings.Split(s, ",")
	}
	os.Exit(gate(*baseline, *fresh, split(*fields), split(*lats), *tol, *mins, *maxs, os.Stdout, os.Stderr))
}

// gate runs the whole comparison and returns the process exit status
// (0 pass, 1 regression, 2 usage/parse). Split from main for testability.
func gate(baseline, fresh string, fields, lats []string, tol float64, mins, maxs string, out, errw io.Writer) int {
	base, err := readRecord(baseline)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			fmt.Fprintf(errw, "benchgate: warning: baseline %s does not exist yet; skipping relative gates\n", baseline)
			base = nil
		} else {
			fmt.Fprintln(errw, "benchgate:", err)
			return 2
		}
	}
	cur, err := readRecord(fresh)
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 2
	}
	floors, err := parseFloors(mins)
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 2
	}
	ceilings, err := parseFloors(maxs)
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 2
	}
	if base != nil {
		lines, err := compare(base, cur, fields, tol)
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		if err != nil {
			fmt.Fprintln(errw, "benchgate:", err)
			return 1
		}
		lines, err = compareLat(base, cur, lats, tol)
		for _, l := range lines {
			fmt.Fprintln(out, l)
		}
		if err != nil {
			fmt.Fprintln(errw, "benchgate:", err)
			return 1
		}
	}
	lines, err := checkFloors(cur, floors)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 1
	}
	lines, err = checkCeilings(cur, ceilings)
	for _, l := range lines {
		fmt.Fprintln(out, l)
	}
	if err != nil {
		fmt.Fprintln(errw, "benchgate:", err)
		return 1
	}
	return 0
}

// floor is one absolute -min gate.
type floor struct {
	field string
	min   float64
}

// parseFloors parses the -min list ("a=1.5,b=60").
func parseFloors(spec string) ([]floor, error) {
	var out []floor
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("bad -min entry %q (want field=value)", part)
		}
		// strconv.ParseFloat rejects trailing garbage where Sscanf would
		// silently accept a partial parse and weaken the gate.
		min, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -min value in %q: %w", part, err)
		}
		out = append(out, floor{field: strings.TrimSpace(name), min: min})
	}
	return out, nil
}

// checkFloors gates fresh-record fields against absolute minimums.
func checkFloors(fresh map[string]any, floors []floor) ([]string, error) {
	var lines []string
	var failed []string
	for _, f := range floors {
		v, err := number(fresh, f.field)
		if err != nil {
			return lines, fmt.Errorf("fresh %w", err)
		}
		status := "ok"
		if v < f.min {
			status = "BELOW FLOOR"
			failed = append(failed, f.field)
		}
		lines = append(lines, fmt.Sprintf("%-36s fresh %12.3f  (absolute floor %.3f)  %s",
			f.field, v, f.min, status))
	}
	if len(failed) > 0 {
		return lines, fmt.Errorf("%d field(s) below absolute floor: %s",
			len(failed), strings.Join(failed, ", "))
	}
	return lines, nil
}

// checkCeilings gates fresh-record fields against absolute maximums — the
// -max mirror of checkFloors, for bounded-above metrics like a latency
// ratio.
func checkCeilings(fresh map[string]any, ceilings []floor) ([]string, error) {
	var lines []string
	var failed []string
	for _, f := range ceilings {
		v, err := number(fresh, f.field)
		if err != nil {
			return lines, fmt.Errorf("fresh %w", err)
		}
		status := "ok"
		if v > f.min {
			status = "ABOVE CEILING"
			failed = append(failed, f.field)
		}
		lines = append(lines, fmt.Sprintf("%-36s fresh %12.3f  (absolute ceiling %.3f)  %s",
			f.field, v, f.min, status))
	}
	if len(failed) > 0 {
		return lines, fmt.Errorf("%d field(s) above absolute ceiling: %s",
			len(failed), strings.Join(failed, ", "))
	}
	return lines, nil
}

func readRecord(path string) (map[string]any, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

// compare checks each gated field of fresh against baseline·(1−tol) and
// returns one report line per field plus an error naming every regressed
// field. Fields missing from either record, non-numeric, or non-positive in
// the baseline are errors too: a silently ungated field would turn the gate
// into a no-op exactly when a record's schema drifts.
func compare(baseline, fresh map[string]any, fields []string, tol float64) ([]string, error) {
	var lines []string
	var failed []string
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := number(baseline, f)
		if err != nil {
			return lines, fmt.Errorf("baseline %w", err)
		}
		c, err := number(fresh, f)
		if err != nil {
			return lines, fmt.Errorf("fresh %w", err)
		}
		if b <= 0 {
			return lines, fmt.Errorf("baseline %s = %v is not a positive rate", f, b)
		}
		floor := b * (1 - tol)
		ratio := c / b
		status := "ok"
		if c < floor {
			status = "REGRESSED"
			failed = append(failed, f)
		}
		lines = append(lines, fmt.Sprintf("%-36s baseline %12.3f  fresh %12.3f  (%.2f×, floor %.3f)  %s",
			f, b, c, ratio, floor, status))
	}
	if len(failed) > 0 {
		return lines, fmt.Errorf("%d field(s) regressed beyond %.0f%%: %s",
			len(failed), tol*100, strings.Join(failed, ", "))
	}
	return lines, nil
}

// compareLat is compare for lower-is-better fields (latencies): the fresh
// value must stay at or below baseline·(1+tol). The baseline must be
// positive — a zero committed latency says the record predates the field,
// and silently passing would be the schema-drift hole compare also closes.
func compareLat(baseline, fresh map[string]any, fields []string, tol float64) ([]string, error) {
	var lines []string
	var failed []string
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		b, err := number(baseline, f)
		if err != nil {
			return lines, fmt.Errorf("baseline %w", err)
		}
		c, err := number(fresh, f)
		if err != nil {
			return lines, fmt.Errorf("fresh %w", err)
		}
		if b <= 0 {
			return lines, fmt.Errorf("baseline %s = %v is not a positive latency", f, b)
		}
		ceiling := b * (1 + tol)
		ratio := c / b
		status := "ok"
		if c > ceiling {
			status = "REGRESSED"
			failed = append(failed, f)
		}
		lines = append(lines, fmt.Sprintf("%-36s baseline %12.3f  fresh %12.3f  (%.2f×, ceiling %.3f)  %s",
			f, b, c, ratio, ceiling, status))
	}
	if len(failed) > 0 {
		return lines, fmt.Errorf("%d latency field(s) regressed beyond %.0f%%: %s",
			len(failed), tol*100, strings.Join(failed, ", "))
	}
	return lines, nil
}

// number extracts a top-level numeric field.
func number(m map[string]any, field string) (float64, error) {
	v, ok := m[field]
	if !ok {
		return 0, fmt.Errorf("record has no field %q", field)
	}
	n, ok := v.(float64)
	if !ok {
		return 0, fmt.Errorf("record field %q is %T, not a number", field, v)
	}
	return n, nil
}
