// Command fpgareport regenerates the paper's Table II — the Virtex-7
// synthesis comparison of TABLEFREE, TABLESTEER-14b and TABLESTEER-18b —
// from the resource/timing model, and projects the §VI-B UltraScale part.
//
// Usage:
//
//	fpgareport [-device virtex7|ultrascale] [-paper]
//
// -paper prints the published Table II rows next to the modeled ones.
package main

import (
	"flag"
	"fmt"
	"os"

	"ultrabeam/internal/core"
	"ultrabeam/internal/experiments"
	"ultrabeam/internal/fpga"
	"ultrabeam/internal/report"
	"ultrabeam/internal/tablesteer"
)

func main() {
	device := flag.String("device", "virtex7", "target: virtex7|ultrascale")
	withPaper := flag.Bool("paper", false, "print the published rows too")
	flag.Parse()

	var d fpga.Device
	switch *device {
	case "virtex7":
		d = fpga.Virtex7VX1140T2()
	case "ultrascale":
		d = fpga.VirtexUltraScale()
	default:
		fmt.Fprintf(os.Stderr, "fpgareport: unknown device %q\n", *device)
		os.Exit(2)
	}

	spec := core.PaperSpec()
	tf := experiments.TableFreeAccuracy(spec, 16, 24)
	steer := experiments.SteerAccuracy(spec, tablesteer.SweepOptions{
		StrideTheta: 16, StridePhi: 16, StrideDepth: 16, StrideElem: 12, Parallel: true})
	res := experiments.TableII(spec, d, tf, steer)
	if err := res.Table().Render(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fpgareport:", err)
		os.Exit(1)
	}

	if *withPaper {
		fmt.Println()
		t := report.NewTable("Table II — published values (DATE'15)",
			"architecture", "LUTs", "regs", "BRAM", "clock", "offchip BW",
			"inaccuracy (avg/max)", "throughput", "frame rate", "channels")
		for _, arch := range []string{"TABLEFREE", "TABLESTEER-14b", "TABLESTEER-18b"} {
			r, _ := experiments.PaperTableIIRow(arch)
			bw := "none"
			if r.OffchipGBs > 0 {
				bw = fmt.Sprintf("%.1f GB/s", r.OffchipGBs)
			}
			t.Add(r.Arch, report.Pct(r.LUTFrac), report.Pct(r.RegFrac), report.Pct(r.BRAMFrac),
				fmt.Sprintf("%.0f MHz", r.ClockMHz), bw,
				fmt.Sprintf("%.2f / %.0f", r.InaccAvg, r.InaccMax),
				fmt.Sprintf("%.2f Tdel/s", r.Tdelays/1e12),
				fmt.Sprintf("%.1f fps", r.FrameRate), r.Channels)
		}
		if err := t.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "fpgareport:", err)
			os.Exit(1)
		}
	}
}
